#include "net/script.hpp"

#include <stdexcept>

namespace indulgence {

ScriptView::ScriptView(SystemConfig config, const RunSchedule& schedule)
    : config_(config),
      schedule_(&schedule),
      crash_round_(static_cast<std::size_t>(config.n), 0),
      crash_before_send_(static_cast<std::size_t>(config.n), 0),
      last_planned_(schedule.last_planned_round()) {
  config_.validate();
  for (Round k = 1; k <= last_planned_; ++k) {
    for (const CrashEvent& e : schedule.plan(k).crashes()) {
      if (e.pid < 0 || e.pid >= config_.n) {
        throw std::invalid_argument("scripted crash of unknown process");
      }
      auto idx = static_cast<std::size_t>(e.pid);
      if (crash_round_[idx] != 0) continue;  // kernel ignores re-crashes
      crash_round_[idx] = k;
      crash_before_send_[idx] = e.before_send ? 1 : 0;
    }
  }
}

bool ScriptView::sends_in_round(ProcessId pid, Round k) const {
  const Round c = crash_round_[static_cast<std::size_t>(pid)];
  if (c == 0 || c > k) return true;
  if (c < k) return false;
  return crash_before_send_[static_cast<std::size_t>(pid)] == 0;
}

int ScriptView::expected_in_round(ProcessId receiver, Round k) const {
  int count = 1;  // unconditional self-delivery
  const RoundPlan& plan = schedule_->plan(k);
  for (ProcessId sender = 0; sender < config_.n; ++sender) {
    if (sender == receiver) continue;
    if (!sends_in_round(sender, k)) continue;
    if (plan.fate(sender, receiver).kind == FateKind::Deliver) ++count;
  }
  return count;
}

int ScriptView::expected_delayed(ProcessId receiver, Round k) const {
  int count = 0;
  const Round last = std::min<Round>(k - 1, last_planned_);
  for (Round s = 1; s <= last; ++s) {
    for (const RoundPlan::Override& o : schedule_->plan(s).overrides()) {
      if (o.receiver != receiver) continue;
      if (o.fate.kind != FateKind::Delay || o.fate.deliver_round != k) continue;
      if (o.sender == receiver) continue;  // self fates are ignored, as in
                                           // the kernel
      if (!sends_in_round(o.sender, s)) continue;
      ++count;
    }
  }
  return count;
}

std::optional<CrashInjection> ScriptView::crash_of(ProcessId pid) const {
  const Round c = crash_round_[static_cast<std::size_t>(pid)];
  if (c == 0) return std::nullopt;
  return CrashInjection{
      pid, c, crash_before_send_[static_cast<std::size_t>(pid)] != 0};
}

ScriptTransport::ScriptTransport(SystemConfig config,
                                 const RunSchedule& schedule,
                                 std::vector<std::unique_ptr<Mailbox>>& boxes)
    : config_(config), schedule_(&schedule), mailboxes_(&boxes) {}

void ScriptTransport::dispatch(ProcessId sender, Round round,
                               MessagePtr payload) {
  const RoundPlan& plan = schedule_->plan(round);
  for (ProcessId receiver = 0; receiver < config_.n; ++receiver) {
    if (receiver == sender) continue;
    const Fate fate = plan.fate(sender, receiver);
    Round target = round;
    switch (fate.kind) {
      case FateKind::Deliver:
        break;
      case FateKind::Delay:
        target = fate.deliver_round;
        break;
      case FateKind::Lose:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
    }
    (*mailboxes_)[static_cast<std::size_t>(receiver)]->push(
        NetEnvelope{sender, round, target, 0, payload});
  }
}

}  // namespace indulgence
