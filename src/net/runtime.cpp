#include "net/runtime.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "net/live_trace.hpp"
#include "net/round_driver.hpp"
#include "net/router.hpp"
#include "net/script.hpp"
#include "sim/validator.hpp"

namespace indulgence {

namespace {

/// Prefer a root-cause error over the cascade of "replay aborted by peer
/// failure" errors the abort fans out to the other drivers.
std::exception_ptr pick_error(
    const std::vector<std::unique_ptr<RoundDriver>>& drivers) {
  std::exception_ptr fallback;
  for (const auto& driver : drivers) {
    std::exception_ptr error = driver->error();
    if (!error) continue;
    if (!fallback) fallback = error;
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& ex) {
      if (std::string(ex.what()).find("aborted") == std::string::npos) {
        return error;
      }
    } catch (...) {
      return error;
    }
  }
  return fallback;
}

}  // namespace

LiveRuntime::LiveRuntime(SystemConfig config, LiveOptions options)
    : config_(config), options_(std::move(options)) {
  config_.validate();
}

void LiveRuntime::use_socket_transport(SocketAddress::Kind kind,
                                       SocketTransportOptions socket_options) {
  socket_kind_ = kind;
  socket_options_ = std::move(socket_options);
}

RunResult LiveRuntime::run(const AlgorithmFactory& factory,
                           const std::vector<Value>& proposals) {
  return execute(nullptr, Model::ES, factory, proposals);
}

RunResult LiveRuntime::replay(Model model, const RunSchedule& schedule,
                              const AlgorithmFactory& factory,
                              const std::vector<Value>& proposals) {
  return execute(&schedule, model, factory, proposals);
}

RunResult LiveRuntime::execute(const RunSchedule* schedule, Model model,
                               const AlgorithmFactory& factory,
                               const std::vector<Value>& proposals) {
  if (static_cast<int>(proposals.size()) != config_.n) {
    throw std::invalid_argument("live runtime: need one proposal per process");
  }
  if (schedule && schedule->byzantine_budget() > 0) {
    throw std::invalid_argument(
        "live runtime: scripted replay does not apply Byzantine events — "
        "replay lying schedules through the kernel, or drive live lies via "
        "LiveOptions::byzantine");
  }
  ProcessSet declared_liars;
  for (const ByzantineInjection& b : options_.byzantine) {
    if (b.event.liar < 0 || b.event.liar >= config_.n) {
      throw std::invalid_argument("live runtime: Byzantine liar p" +
                                  std::to_string(b.event.liar) +
                                  " is out of range");
    }
    declared_liars.insert(b.event.liar);
  }
  const int budget = options_.byzantine_budget > 0 ? options_.byzantine_budget
                                                   : declared_liars.size();
  if (budget > 0 && 3 * budget >= config_.n) {
    throw std::invalid_argument(
        "live runtime: Byzantine budget needs 3b < n");
  }

  // Size mailboxes so that a whole run fits: a process can be sent at most
  // n - 1 copies per round, so producers never block on a consumer that
  // already exited.
  const std::size_t capacity =
      std::max(options_.mailbox_capacity,
               static_cast<std::size_t>(config_.n) *
                   (static_cast<std::size_t>(options_.max_rounds) + 8));
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  mailboxes.reserve(static_cast<std::size_t>(config_.n));
  for (int i = 0; i < config_.n; ++i) {
    mailboxes.push_back(std::make_unique<Mailbox>(capacity));
  }

  std::optional<ScriptView> script;
  std::unique_ptr<ScriptTransport> script_transport;
  std::unique_ptr<SupervisedTransport> supervised;
  Transport* transport = nullptr;
  if (schedule) {
    script.emplace(config_, *schedule);
    script_transport =
        std::make_unique<ScriptTransport>(config_, *schedule, mailboxes);
    transport = script_transport.get();
  } else if (socket_kind_) {
    SocketTransportOptions socket_options = socket_options_;
    if (socket_options.byzantine.empty()) {
      socket_options.byzantine = options_.byzantine;
    }
    supervised = std::make_unique<SocketHub>(config_, *socket_kind_,
                                             std::move(socket_options),
                                             mailboxes);
    transport = supervised.get();
  } else {
    supervised = std::make_unique<LiveRouter>(config_, options_, mailboxes);
    transport = supervised.get();
  }

  RunControl control(config_);
  PulseBoard pulses;  // the group's shared pacemaker signal (in-process)
  if (supervised) {
    SupervisedTransport* raw = supervised.get();
    control.on_stop = [raw] { raw->expedite(); };
  }

  const auto epoch = std::chrono::steady_clock::now();
  if (supervised) supervised->start(epoch);
  if (start_hook_) start_hook_(epoch);

  std::vector<std::unique_ptr<RoundDriver>> drivers;
  drivers.reserve(static_cast<std::size_t>(config_.n));
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    DriverContext ctx;
    ctx.self = pid;
    ctx.config = config_;
    ctx.options = &options_;
    ctx.transport = transport;
    ctx.mailbox = mailboxes[static_cast<std::size_t>(pid)].get();
    ctx.control = &control;
    ctx.script = script ? &*script : nullptr;
    ctx.supervision = supervised.get();
    ctx.pulses = script ? nullptr : &pulses;
    ctx.factory = factory;
    ctx.proposal = proposals[static_cast<std::size_t>(pid)];
    ctx.done = done_;
    ctx.observer = observer_;
    ctx.epoch = epoch;
    drivers.push_back(std::make_unique<RoundDriver>(std::move(ctx)));
  }

  std::vector<std::thread> threads;
  threads.reserve(drivers.size());
  for (auto& driver : drivers) {
    threads.emplace_back([d = driver.get()] { d->run(); });
  }
  for (std::thread& t : threads) t.join();

  std::vector<UndeliveredCopy> undelivered =
      supervised ? supervised->stop_and_flush()
                 : std::vector<UndeliveredCopy>{};
  if (auto* hub = dynamic_cast<SocketHub*>(supervised.get())) {
    socket_counters_ = hub->counters();
  }
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    for (NetEnvelope& env :
         mailboxes[static_cast<std::size_t>(pid)]->drain()) {
      undelivered.push_back(
          UndeliveredCopy{env.sender, pid, env.send_round, env.target_round});
    }
  }

  if (std::exception_ptr error = pick_error(drivers)) {
    std::rethrow_exception(error);
  }

  std::vector<ProcessLog> logs;
  logs.reserve(drivers.size());
  algorithms_.clear();
  for (auto& driver : drivers) {
    logs.push_back(std::move(driver->log()));
    algorithms_.push_back(driver->take_algorithm());
  }
  dropped_ = supervised ? supervised->dropped_copies()
                        : script_transport->dropped_copies();

  LiveMergeInput merge;
  merge.config = config_;
  merge.model = model;
  merge.gst_hint = schedule ? schedule->gst() : 0;
  merge.terminated = control.completed_normally();
  merge.logs = &logs;
  merge.undelivered = std::move(undelivered);
  merge.byzantine = declared_liars;
  merge.byzantine_budget = budget;

  RunResult result;
  result.trace = merge_process_logs(merge);
  result.validation = validate_trace(result.trace);
  result.global_decision_round = result.trace.global_decision_round();
  result.agreement = result.trace.agreement_ok();
  result.validity = result.trace.validity_ok();
  result.termination =
      result.trace.terminated() && result.trace.all_correct_decided();
  return result;
}

RunResult run_live(SystemConfig config, const LiveOptions& options,
                   const AlgorithmFactory& factory,
                   const std::vector<Value>& proposals) {
  LiveRuntime runtime(config, options);
  return runtime.run(factory, proposals);
}

RunResult replay_schedule_live(SystemConfig config, Model model,
                               const RunSchedule& schedule,
                               const AlgorithmFactory& factory,
                               const std::vector<Value>& proposals,
                               LiveOptions options) {
  LiveRuntime runtime(config, std::move(options));
  return runtime.replay(model, schedule, factory, proposals);
}

}  // namespace indulgence
