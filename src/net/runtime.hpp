// LiveRuntime: run any RoundAlgorithm — the seven consensus algorithms or
// the RSM replica — as a real concurrent service, one thread per process,
// exchanging messages through a fault-injecting router (live mode) or a
// schedule-replaying transport (scripted mode).
//
// Both modes end in the same place as the lockstep kernel: a merged
// RunTrace re-checked by the independent model validator, wrapped in the
// familiar RunResult.  Scripted replays additionally reproduce the
// kernel's exact per-round delivery batches, so decision rounds can be
// asserted equal between the two execution engines on matched schedules.

#pragma once

#include <optional>
#include <vector>

#include "net/options.hpp"
#include "net/socket_transport.hpp"
#include "sim/harness.hpp"
#include "sim/process.hpp"
#include "sim/schedule.hpp"

namespace indulgence {

class LiveRuntime {
 public:
  explicit LiveRuntime(SystemConfig config, LiveOptions options = {});

  /// RSM and other services override "when is a process finished".
  void set_done_predicate(DonePredicate done) { done_ = std::move(done); }

  /// Benches hang per-round latency probes here.
  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }

  /// Called once per run with the run's epoch (the steady_clock instant
  /// driver latencies are measured from), after the transport is up and
  /// before the driver threads start.  Client workload layers release
  /// their submitter threads here so client-to-commit latencies share the
  /// drivers' clock base.
  using StartHook = std::function<void(std::chrono::steady_clock::time_point)>;
  void set_start_hook(StartHook hook) { start_hook_ = std::move(hook); }

  /// Routes live runs over real sockets (a SocketHub — one endpoint per
  /// process, UDS or TCP loopback) instead of the fault-injecting router.
  /// The router's latency/loss/partition knobs do not apply; wire chaos in
  /// `socket_options.chaos` takes their place.  Scripted replays are
  /// unaffected.
  void use_socket_transport(SocketAddress::Kind kind,
                            SocketTransportOptions socket_options = {});

  /// Supervisor counters aggregated over the last socket-transport run.
  const SocketCounters& socket_counters() const { return socket_counters_; }

  /// Live mode: wall-clock GST, router-injected latency / loss / partitions
  /// / crashes, post-hoc minimal conforming GST round in the trace.
  RunResult run(const AlgorithmFactory& factory,
                const std::vector<Value>& proposals);

  /// Scripted mode: replay `schedule` over real threads; the trace carries
  /// the schedule's own GST claim.
  RunResult replay(Model model, const RunSchedule& schedule,
                   const AlgorithmFactory& factory,
                   const std::vector<Value>& proposals);

  /// Algorithm instances of the last run, for state inspection.
  const AlgorithmInstances& algorithms() const { return algorithms_; }

  /// Copies dropped by fault injection in the last run (loss_prob or
  /// scripted Lose fates).
  long dropped_copies() const { return dropped_; }

 private:
  RunResult execute(const RunSchedule* schedule, Model model,
                    const AlgorithmFactory& factory,
                    const std::vector<Value>& proposals);

  SystemConfig config_;
  LiveOptions options_;
  DonePredicate done_;
  RoundObserver observer_;
  StartHook start_hook_;
  AlgorithmInstances algorithms_;
  long dropped_ = 0;
  std::optional<SocketAddress::Kind> socket_kind_;
  SocketTransportOptions socket_options_;
  SocketCounters socket_counters_;
};

/// One-shot live run with default predicates.
RunResult run_live(SystemConfig config, const LiveOptions& options,
                   const AlgorithmFactory& factory,
                   const std::vector<Value>& proposals);

/// One-shot scripted replay (the live counterpart of run_and_check).
RunResult replay_schedule_live(SystemConfig config, Model model,
                               const RunSchedule& schedule,
                               const AlgorithmFactory& factory,
                               const std::vector<Value>& proposals,
                               LiveOptions options = {});

}  // namespace indulgence
