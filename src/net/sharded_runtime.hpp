// The sharded multi-group runtime: G independent consensus groups (each an
// n-replica RSM or single-shot instance) multiplexed over M node endpoints
// of the group-aware socket transport.
//
// Sharding is the standard throughput move for an RSM — partition the key
// space, run one consensus group per partition — and the paper's price
// (t + 2 rounds per indulgent instance, A_{t+2}) is paid *per group*, so
// aggregate commits/s scales with G while every group's trace individually
// satisfies the unchanged per-group Validator.  The layering is:
//
//   key --group_for_key--> GroupId --placement--> n distinct nodes
//   RoundDriver (per replica, unchanged)  -->  GroupPort (per group view)
//     --> SocketEndpoint (per node: shared links, per-group demux)
//
// Placement is round-robin with offset: replica i of group g lives on node
// (g + i) mod M, so consecutive groups lead on different nodes and every
// node carries a balanced share of leaders and followers.  M >= n keeps
// replicas of one group on pairwise-distinct nodes (the transport enforces
// it).
//
// Two drive modes mirror the single-group runtime:
//   * run_sharded(): everything in one process — M endpoints over real
//     sockets, G x n driver threads, per-group armed-stop shutdown, per-
//     group merge + validation.  The bench and fuzz entry point.
//   * ShardedNode: one OS process per node for the multi-process demo —
//     hosts its share of replicas, runs them for an agreed fixed round
//     count, and ships one ShippedLog per hosted group; the launcher
//     merges with ship_and_merge_groups().

#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/options.hpp"
#include "net/socket_transport.hpp"
#include "net/trace_ship.hpp"
#include "sim/harness.hpp"

namespace indulgence {

/// Hash-partitioned key routing: which group owns `key`.  FNV-1a with a
/// 64-bit avalanche so consecutive keys spread across groups.
GroupId group_for_key(std::uint64_t key, int num_groups);

/// Replica i of group g lives on node (g + i) mod num_nodes.
int node_for(GroupId group, ProcessId pid, int num_nodes);

/// The full placement vector for one group: members[pid] = hosting node.
std::vector<int> group_placement(GroupId group, int n, int num_nodes);

struct ShardedOptions {
  int num_nodes = 3;          ///< M endpoints; must be >= config.n
  int num_groups = 8;         ///< G consensus groups
  SystemConfig config{3, 1};  ///< per-group (n, t)
  LiveOptions live;           ///< per-driver pacing (gates, grace, seed)
  SocketAddress::Kind kind = SocketAddress::Kind::Unix;
  SocketTransportOptions socket;
  DonePredicate done;         ///< per replica; null = "has decided"
  /// > 0: every replica runs exactly rounds 1..fixed_rounds (the
  /// multi-process discipline); 0 = per-group armed-stop shutdown.
  Round fixed_rounds = 0;
  /// Called once with the run epoch after every endpoint is up and before
  /// the driver threads start — the sharded mirror of
  /// LiveRuntime::set_start_hook (client fleets launch here).
  std::function<void(std::chrono::steady_clock::time_point)> on_start;
};

/// What one group produced: the validated per-group RunResult, its replica
/// instances (RSM log inspection), its traffic counters summed over the
/// hosting endpoints, and its wall-clock span (epoch to the last of its
/// drivers exiting) for per-group latency percentiles.
struct GroupOutcome {
  RunResult result;
  AlgorithmInstances algorithms;
  GroupCounters traffic;
  std::chrono::microseconds wall{0};
};

struct ShardedResult {
  std::map<GroupId, GroupOutcome> groups;
  SocketCounters counters;  ///< fabric-wide aggregate over all endpoints

  /// Every group's merged trace passed the unchanged per-group Validator
  /// and its run terminated.  (Single-shot consensus payloads should
  /// additionally assert result.ok() per group; an RSM never "decides" in
  /// the single-shot sense, so ok() is not the right group-level check.)
  bool all_valid() const;
};

/// Per-group algorithm factory (the RSM needs per-group command queues)
/// and proposals (one per group-local replica).
using GroupFactory = std::function<AlgorithmFactory(GroupId)>;
using GroupProposals = std::function<std::vector<Value>(GroupId)>;

/// Runs G groups x n replicas over M endpoints inside this process and
/// merges + validates each group's trace independently.  Throws on driver
/// failure or invalid options (config invalid, num_nodes < config.n).
ShardedResult run_sharded(const ShardedOptions& options,
                          const GroupFactory& factory_for,
                          const GroupProposals& proposals_for);

/// One node of a multi-process sharded fabric: binds its endpoint up
/// front (listen_address() is then final), hosts replicas via host(), and
/// run() drives them all for an agreed fixed round count, returning one
/// ShippedLog per hosted group for ship_and_merge_groups().
class ShardedNode {
 public:
  ShardedNode(int node, int num_nodes, SocketAddress listen,
              AddressResolver resolver, SocketTransportOptions socket,
              LiveOptions live);

  /// Registers group-local replica `self` of `group` on this node.
  /// `members[pid]` = hosting node (members[self] must be this node).
  /// The factory is per hosted replica because sharded services give each
  /// group its own payload (e.g. per-group RSM command streams).
  void host(GroupId group, SystemConfig config, ProcessId self,
            std::vector<int> members, AlgorithmFactory factory,
            Value proposal);

  const SocketAddress& listen_address() const {
    return endpoint_->listen_address();
  }

  /// Runs every hosted replica for exactly rounds 1..fixed_rounds, stops
  /// the endpoint, and returns one ShippedLog per hosted group (ascending
  /// GroupId).  The endpoint-wide supervisor counters ride on the first
  /// log only, so summing over shipped logs does not double-count.
  std::vector<ShippedLog> run(Round fixed_rounds,
                              DonePredicate done = nullptr);

  /// The hosted replicas' algorithm instances after run(), in host() call
  /// order (committed-log inspection for RSM payloads).
  const AlgorithmInstances& algorithms() const { return algorithms_; }
  GroupId hosted_group(std::size_t index) const {
    return hosted_[index].group;
  }

  SocketCounters counters() const { return endpoint_->counters(); }
  SocketEndpoint& endpoint() { return *endpoint_; }

 private:
  struct Hosted {
    GroupId group = 0;
    SystemConfig config{};
    ProcessId self = -1;
    AlgorithmFactory factory;
    Value proposal = kBottom;
    std::unique_ptr<Mailbox> mailbox;
    std::unique_ptr<GroupPort> port;
  };

  LiveOptions live_;
  std::unique_ptr<SocketEndpoint> endpoint_;
  std::vector<Hosted> hosted_;
  AlgorithmInstances algorithms_;
};

}  // namespace indulgence
