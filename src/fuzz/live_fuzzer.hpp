// The live fuzz campaign: randomized LiveOptions sweeps over real threads,
// re-checked by the unchanged Validator and cross-checked against the
// lockstep kernel via the trace exporter.
//
// The wall-clock counterpart of fuzz/fuzzer.hpp.  Each run draws one of two
// option profiles from net/options_rand.hpp:
//
//   * VALID draws (3 of 4) stay inside eventual synchrony by construction:
//     random latency/jitter, a wall-clock GST offset, quorum-grace pacing,
//     bounded partitions, up to t crash injections.  Oracle: the merged
//     trace must pass the validator (InvalidTrace otherwise), ES-safe
//     targets must uphold consensus (Violation otherwise), and the kernel
//     replay of the exported schedule must agree with the live run on
//     validity and on every per-process first-decision round (Divergence
//     otherwise).
//
//   * LOSSY draws (1 of 4) step outside the model on purpose: heavy
//     pre-GST loss under a GST that never arrives, rounds closed by the
//     round_cap valve.  Oracle: any run that dropped a copy must be flagged
//     invalid (UnflaggedLoss otherwise), and the kernel replay of the
//     export must be flagged invalid too (Divergence otherwise).
//
// Violations by targets whose guarantees do not cover asynchronous timing —
// the SCS FloodSet family and the deliberately broken variants — are the
// expected behaviour the paper predicts ("caught", reported on stderr by
// the driver), not findings.  A healthy repository therefore produces ZERO
// findings, which is what makes the report table deterministic: with a
// fixed seed and no wall-clock cutoff every column is derived from the
// seed stream alone, at any job count (the INDULGENCE_JOBS=1 contract).
//
// Live runs cannot be regenerated from their index (wall-clock timing is
// part of the input), so the lowest-index finding carries its exported
// schedule through the campaign reduce; shrinking operates on that export
// with the PR-2 delta-debugging shrinker whenever the defect reproduces
// under the kernel.

#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/targets.hpp"
#include "net/options_rand.hpp"

namespace indulgence {

struct LiveFuzzOptions {
  std::uint64_t seed = 1;
  long budget = 25;        ///< live runs per (target, config) cell
  bool shrink = true;      ///< minimize the first finding's export
  LiveGenOptions gen;
  CampaignOptions campaign;
  /// Wall-clock budget: no new run starts past this point (checked between
  /// runs, never mid-run).  nullopt = runs budget only.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Run over real Unix-domain sockets (SocketHub) instead of the in-memory
  /// router: every draw is a valid profile (sockets never drop copies) plus
  /// a seeded wire-chaos window; the oracle is unchanged.  Uses a distinct
  /// seed stream so --live and --socket sweeps do not shadow each other.
  bool socket = false;
  /// Socket campaign only: > 1 runs that many independent groups of the
  /// target per draw over ONE shared group-multiplexed fabric (run_sharded
  /// over n or n+1 node endpoints), with the drawn wire-chaos window
  /// hitting the links every group shares.  Each group gets its own
  /// proposals and is judged independently by the unchanged oracle
  /// (validator + consensus check + kernel replay of its export), so any
  /// cross-group bleed in the demux layer surfaces as a finding in the
  /// group it corrupted.  Crash injections are cleared for these draws:
  /// chaos is the adversary, and a per-pid crash applied to every group at
  /// once would only blur which layer failed.
  int groups = 1;
};

enum class LiveFindingKind {
  InvalidTrace,    ///< valid draw, but the merged trace failed validation
  UnflaggedLoss,   ///< copies were dropped, yet the validator said OK
  Violation,       ///< an ES-safe target broke consensus on a valid run
  Divergence,      ///< kernel replay of the export disagreed with the run
};

const char* to_string(LiveFindingKind kind);

/// One unexpected live run, carrying its exported schedule (live runs are
/// not regenerable from the seed; the export IS the repro).
struct LiveFinding {
  long run_index = -1;
  LiveFindingKind kind = LiveFindingKind::InvalidTrace;
  std::string description;
  SystemConfig config;
  std::vector<Value> proposals;
  RunSchedule schedule{SystemConfig{}};  ///< exported, post-shrink
  RunSchedule original{SystemConfig{}};  ///< exported exactly as recorded
  Round max_rounds = 64;     ///< kernel horizon (the run's rounds_executed)
  ShrinkStats shrink_stats;
  int planned_rounds = 0;
};

struct LiveFuzzReport {
  std::string target;
  SystemConfig config;
  Model model = Model::ES;
  bool expect_safe = true;
  long runs = 0;             ///< actually executed (< budget after cutoff)
  long lossy_runs = 0;       ///< expected-invalid profile draws among runs
  long flagged_invalid = 0;  ///< lossy runs the validator rejected
  long caught = 0;           ///< expected violations (SCS / broken targets)
  long findings = 0;
  bool wall_cutoff = false;  ///< the deadline stopped the sweep early
  /// Socket campaign only: supervisor counters summed over every run, so
  /// the driver can report how much chaos the sweep actually survived.
  SocketCounters socket_counters;
  std::optional<LiveFinding> first;  ///< lowest-index finding, minimized

  /// Healthy: no findings, and every lossy run was flagged invalid.
  bool as_expected() const {
    return findings == 0 && flagged_invalid == lossy_runs;
  }
};

/// Sweeps `budget` randomized live runs of one target.  Deterministic
/// contract: run i's options and proposals derive from
/// Rng::for_stream(seed', i) alone, so with no wall cutoff the profile
/// counts — and, on a healthy repository, the whole report — are identical
/// at any job count.
LiveFuzzReport live_fuzz_target(const FuzzTarget& target, SystemConfig config,
                                const LiveFuzzOptions& options);

/// The drawn (options, proposals, lossy?) triple of one run, exposed so
/// tests can pin the determinism contract without executing the run.
struct LiveRunPlan {
  bool lossy = false;
  LiveOptions options;
  std::vector<Value> proposals;
  WireChaosOptions chaos;  ///< socket plans only; all-zero probs otherwise
};
LiveRunPlan live_fuzz_run_plan(const FuzzTarget& target, SystemConfig config,
                               std::uint64_t seed, long run_index,
                               const LiveGenOptions& gen = {});

/// The socket campaign's per-run draw: always a valid profile (partitions
/// cleared — sockets hold, they never cut) plus a wire-chaos window, from a
/// "socket:"-prefixed seed stream decorrelated from live_fuzz_run_plan's.
LiveRunPlan live_socket_run_plan(const FuzzTarget& target, SystemConfig config,
                                 std::uint64_t seed, long run_index,
                                 const LiveGenOptions& gen = {});

/// Wraps a live finding as a corpus document (expect 'invalid' for
/// InvalidTrace/UnflaggedLoss exports, 'violation' for Violation).
ReproCase live_finding_to_repro(const FuzzTarget& target,
                                const LiveFinding& finding,
                                std::uint64_t seed);

/// Deterministic corpus seeds, regenerable byte-for-byte:
///
///   * the LOSS sample runs hr at n=3 t=1 under total pre-GST loss with a
///     25 ms wall-clock GST and 10 ms round caps — three fully-dropped
///     rounds, then synchronous recovery and a normal decision.  Every
///     timing margin is >= 5 ms, so the exported bytes are identical on
///     every machine and the entry replays 'invalid' under the kernel.
///
///   * the CRASH/PARTITION sample runs at2 at n=5 t=2 with a partition
///     healing right at the wall-clock GST and p4 crashed before-send from
///     round 1 — the boundary the round synchronizer gets wrong first if it
///     gets anything wrong.  (Round 1 before-send keeps the export byte
///     stable: a mid-run crash races its instant crash report against its
///     own previous-round copies still on the latency path.)  Replays 'ok'.
std::pair<std::string, ReproCase> live_loss_sample();
std::pair<std::string, ReproCase> live_crash_partition_sample();

/// The multi-group corpus seed: group 1 of a clean 3-group sharded socket
/// run of at2 at n=3 over 4 node endpoints.  Its envelopes shared every
/// link (and every link's seq/ack stream) with groups 0 and 2, so the
/// exported per-group trace exists only because the demux layer routed
/// correctly; it must replay 'ok' under the kernel.
std::pair<std::string, ReproCase> live_sharded_sample();

}  // namespace indulgence
