#include "fuzz/targets.hpp"

#include <stdexcept>

#include "consensus/floodset.hpp"
#include "consensus/floodset_early.hpp"
#include "consensus/floodset_ws.hpp"
#include "consensus/hurfin_raynal.hpp"
#include "core/af2.hpp"
#include "core/at2.hpp"
#include "core/at2_auth.hpp"
#include "core/at2_ds.hpp"
#include "fd/failure_detector.hpp"

namespace indulgence {

std::optional<std::string> consensus_violation(
    const RunResult& result, const AlgorithmInstances& instances) {
  if (auto what = agreement_or_validity_violation(result, instances)) {
    return what;
  }
  if (!result.termination) {
    return "termination failed: a correct process never decided within the "
           "round cap";
  }
  return std::nullopt;
}

namespace {

AlgorithmFactory ablated_at2(At2Options options) {
  return at2_factory(hurfin_raynal_factory(), options);
}

std::vector<FuzzTarget> make_targets() {
  std::vector<FuzzTarget> targets;
  // --- the seven real algorithms: must survive every model-valid run ----
  targets.push_back({"floodset", "FloodSet, t+1 rounds", Model::SCS, true,
                     "consensus", floodset_factory()});
  targets.push_back({"floodset-ws", "FloodSet-WS (value-set flooding)",
                     Model::SCS, true, "consensus", floodset_ws_factory()});
  targets.push_back({"floodset-early", "early-deciding FloodSet", Model::SCS,
                     true, "consensus", floodset_early_factory()});
  targets.push_back({"hr", "Hurfin-Raynal (rotating coordinator)", Model::ES,
                     true, "consensus", hurfin_raynal_factory()});
  targets.push_back({"at2", "A_{t+2} over Hurfin-Raynal", Model::ES, true,
                     "consensus", at2_factory(hurfin_raynal_factory())});
  targets.push_back({"at2-ds", "A_{<>S} (DS variant, receipt detector)",
                     Model::ES, true, "consensus",
                     at2_ds_factory(hurfin_raynal_factory(),
                                    receipt_detector_factory())});
  targets.push_back({"af2", "A_{f+2} (early-deciding indulgent)", Model::ES,
                     true, "consensus", af2_factory()});

  // --- the authenticated Byzantine-resilient variant (needs n > 3t) -----
  targets.push_back({"at2-auth", "A_{t+2}^auth (survives b < n/3 liars)",
                     Model::ES, true, "consensus", at2_auth_factory(),
                     ByzExpectation::Survives});
  // Its ablations exist only for --byz sweeps: each must be re-broken by
  // the lie class its missing mechanism defends against.
  targets.push_back({"at2-auth-notags", "A_{t+2}^auth without auth tags",
                     Model::ES, false, "consensus",
                     at2_auth_factory({.ablate_tags = true}),
                     ByzExpectation::Breaks, true});
  targets.push_back({"at2-auth-noecho",
                     "A_{t+2}^auth without echo certificates", Model::ES,
                     false, "consensus",
                     at2_auth_factory({.ablate_echo = true}),
                     ByzExpectation::Breaks, true});
  targets.push_back({"at2-auth-nodedup",
                     "A_{t+2}^auth without quorum dedup", Model::ES, false,
                     "consensus", at2_auth_factory({.ablate_dedup = true}),
                     ByzExpectation::Breaks, true});

  // --- known-broken variants: the fuzzer must rediscover each bug -------
  targets.push_back({"at2-fscheck",
                     "A_{t+2} without the |Halt| > t false-suspicion test",
                     Model::ES, false, "consensus",
                     ablated_at2({.ablate_false_suspicion_check = true})});
  targets.push_back({"at2-haltxchg", "A_{t+2} without the Halt exchange",
                     Model::ES, false, "consensus",
                     ablated_at2({.ablate_halt_exchange = true})});
  targets.push_back({"at2-haltfilter",
                     "A_{t+2} without the line-34 msgSet filter", Model::ES,
                     false, "elimination",
                     ablated_at2({.ablate_halt_filter = true})});
  targets.push_back({"at2-trunc", "the impossible A_{t+1} (Phase 1 cut short)",
                     Model::ES, false, "consensus",
                     [](ProcessId self, const SystemConfig& config)
                         -> std::unique_ptr<RoundAlgorithm> {
                       At2Options o;
                       o.phase1_rounds = config.t;
                       return std::make_unique<At2>(
                           self, config, hurfin_raynal_factory(), o);
                     }});
  return targets;
}

}  // namespace

const std::vector<FuzzTarget>& fuzz_targets() {
  static const std::vector<FuzzTarget> targets = make_targets();
  return targets;
}

const FuzzTarget* find_fuzz_target(std::string_view name) {
  for (const FuzzTarget& t : fuzz_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

ViolationPredicate find_check(std::string_view name) {
  if (name == "consensus") return consensus_violation;
  if (name == "elimination") return elimination_violation;
  throw std::invalid_argument("unknown check '" + std::string(name) +
                              "' (want 'consensus' or 'elimination')");
}

}  // namespace indulgence
