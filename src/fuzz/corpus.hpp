// The serialized repro corpus: `.sched` files that bundle a schedule with
// everything needed to re-judge it.
//
// A corpus entry is a complete, self-contained regression test: which
// algorithm to run (a fuzz target name), which predicate to check, what the
// verdict must be, and the schedule itself in sim/schedule_io.hpp syntax.
// tests/corpus/ holds the permanent entries — E2's counterexamples, E9's
// laggard attack, the minimized X1 ablation repros — and the corpus-replay
// test re-runs every file on each CI run, so a bug once captured can never
// silently regress.
//
//   repro v1
//   # free-form commentary
//   algo at2-fscheck
//   check consensus          (optional; default: the target's check)
//   expect violation         ('violation', 'ok', or 'invalid')
//   model ES                 (optional; default: the target's model)
//   max-rounds 64            (optional; default 64)
//   proposals 0 1 2          (optional; default: distinct 0..n-1)
//   sched v1
//   system n=3 t=1
//   ...

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/schedule.hpp"

namespace indulgence {

struct ReproCase {
  std::string algo;                   ///< fuzz target name
  std::optional<std::string> check;   ///< predicate override
  bool expect_violation = false;
  /// 'expect invalid': the schedule itself is out of model (live loss
  /// exports) and the entry reproduces iff the validator rejects it.
  bool expect_invalid = false;
  std::optional<Model> model;         ///< model override
  Round max_rounds = 64;
  std::vector<Value> proposals;       ///< empty: distinct 0..n-1
  std::string comment;                ///< leading '#' lines, without the '#'
  RunSchedule schedule{SystemConfig{.n = 3, .t = 0}};

  SystemConfig config() const { return schedule.config(); }
};

/// Canonical text form (parse_repro(print_repro(r)) reproduces r).
std::string print_repro(const ReproCase& repro);

/// Parses one `.sched` repro document; throws ScheduleParseError (from the
/// schedule part) or std::runtime_error (malformed meta) on bad input.
ReproCase parse_repro(std::string_view text);

/// Reads and parses one file; throws std::runtime_error on I/O failure.
ReproCase load_repro_file(const std::string& path);

/// All `*.sched` files of a directory, sorted by file name; the string is
/// the bare file name (corpus entries are addressed by it in test output).
std::vector<std::pair<std::string, ReproCase>> load_corpus_dir(
    const std::string& dir);

/// The replayed verdict of one corpus entry.
struct ReplayVerdict {
  std::string name;             ///< file name (or target name for fuzz finds)
  bool expect_violation = false;
  bool expect_invalid = false;
  bool model_valid = false;
  bool violation = false;
  std::string detail;           ///< the predicate's description, if violated

  /// The entry still reproduces: an expect-invalid entry must be rejected
  /// by the validator; any other entry must be model-valid with exactly the
  /// claimed violation verdict.
  bool matches() const {
    if (expect_invalid) return !model_valid;
    return model_valid && violation == expect_violation;
  }

  friend bool operator==(const ReplayVerdict&, const ReplayVerdict&) = default;
};

/// Replays one entry (resolving its target, check, and model) and judges it.
/// Throws std::runtime_error when the entry names an unknown target.
ReplayVerdict replay_repro(const std::string& name, const ReproCase& repro);

/// Replays a whole corpus on the campaign engine; the verdict list is in
/// corpus order and identical at any job count.
std::vector<ReplayVerdict> replay_corpus(
    const std::vector<std::pair<std::string, ReproCase>>& corpus,
    CampaignOptions campaign = {});

}  // namespace indulgence
