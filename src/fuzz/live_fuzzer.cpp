#include "fuzz/live_fuzzer.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "fuzz/generator.hpp"
#include "net/runtime.hpp"
#include "net/sharded_runtime.hpp"
#include "net/trace_export.hpp"
#include "sim/harness.hpp"

namespace indulgence {

namespace {

using Clock = std::chrono::steady_clock;

/// FNV-1a, as in fuzzer.cpp; the "live:" prefix keeps the live seed stream
/// decorrelated from the schedule fuzzer's stream for the same target.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t live_cell_seed(const FuzzTarget& target,
                             const SystemConfig& config, std::uint64_t seed) {
  return seed ^ fnv1a("live:" + target.name) ^
         (static_cast<std::uint64_t>(config.n) << 32) ^
         static_cast<std::uint64_t>(config.t);
}

std::uint64_t socket_cell_seed(const FuzzTarget& target,
                               const SystemConfig& config,
                               std::uint64_t seed) {
  return seed ^ fnv1a("socket:" + target.name) ^
         (static_cast<std::uint64_t>(config.n) << 32) ^
         static_cast<std::uint64_t>(config.t);
}

std::map<ProcessId, Round> decision_rounds(const RunTrace& trace) {
  std::map<ProcessId, Round> out;
  for (const DecisionRecord& d : trace.decisions()) {
    out.emplace(d.pid, d.round);  // first decision per process wins
  }
  return out;
}

std::string first_violation(const ValidationReport& report) {
  return report.violations.empty() ? "(no violation text)"
                                   : report.violations.front();
}

/// Everything one run contributes to the campaign reduce.
struct RunOutcome {
  bool lossy = false;
  bool flagged_invalid = false;
  bool caught = false;
  SocketCounters counters;
  std::optional<LiveFinding> finding;
};

RunOutcome judge_run(const FuzzTarget& target, const SystemConfig& config,
                     const ViolationPredicate& violated, std::uint64_t seed,
                     long run_index, const LiveGenOptions& gen, bool socket) {
  LiveRunPlan plan =
      socket ? live_socket_run_plan(target, config, seed, run_index, gen)
             : live_fuzz_run_plan(target, config, seed, run_index, gen);
  RunOutcome outcome;
  outcome.lossy = plan.lossy;

  LiveRuntime runtime(config, plan.options);
  if (socket) {
    SocketTransportOptions socket_options;
    socket_options.seed = plan.options.seed;
    socket_options.chaos = plan.chaos;
    runtime.use_socket_transport(SocketAddress::Kind::Unix, socket_options);
  }
  const RunResult live = runtime.run(target.factory, plan.proposals);
  if (socket) outcome.counters = runtime.socket_counters();

  // Export the trace and replay it through the lockstep kernel, capped at
  // the rounds the live run actually executed: the parity oracle.
  const Round horizon = std::max<Round>(live.trace.rounds_executed(), 1);
  const RunSchedule exported = schedule_from_trace(live.trace);
  KernelOptions kernel_options;
  kernel_options.model = Model::ES;
  kernel_options.max_rounds = horizon;
  const RunResult kernel = run_and_check(config, kernel_options,
                                         target.factory, plan.proposals,
                                         exported);

  auto finding = [&](LiveFindingKind kind, std::string description) {
    LiveFinding f;
    f.run_index = run_index;
    f.kind = kind;
    f.description = std::move(description);
    f.config = config;
    f.proposals = plan.proposals;
    f.schedule = exported;
    f.original = exported;
    f.max_rounds = horizon;
    f.planned_rounds = exported.planned_rounds();
    outcome.finding = std::move(f);
  };

  if (plan.lossy) {
    outcome.flagged_invalid = !live.validation.ok();
    if (runtime.dropped_copies() > 0 && live.validation.ok()) {
      finding(LiveFindingKind::UnflaggedLoss,
              "dropped " + std::to_string(runtime.dropped_copies()) +
                  " copies yet the validator accepted the trace");
    } else if (kernel.validation.ok() != live.validation.ok()) {
      finding(LiveFindingKind::Divergence,
              std::string("validity diverged: live ") +
                  (live.validation.ok() ? "valid" : "invalid") +
                  ", kernel replay " +
                  (kernel.validation.ok() ? "valid" : "invalid"));
    }
    return outcome;
  }

  if (!live.validation.ok()) {
    finding(LiveFindingKind::InvalidTrace,
            "valid draw produced an invalid trace: " +
                first_violation(live.validation));
    return outcome;
  }
  if (auto what = violated(live, runtime.algorithms())) {
    if (target.expect_safe && target.model == Model::ES) {
      finding(LiveFindingKind::Violation, *what);
      return outcome;
    }
    // SCS algorithms and the deliberately broken variants are EXPECTED to
    // crack under asynchronous timing — the paper's indulgence price.
    outcome.caught = true;
  }
  if (!kernel.validation.ok()) {
    finding(LiveFindingKind::Divergence,
            "live trace valid, but its kernel replay is not: " +
                first_violation(kernel.validation));
  } else if (decision_rounds(kernel.trace) != decision_rounds(live.trace)) {
    finding(LiveFindingKind::Divergence,
            "kernel replay decision rounds differ from the live run");
  }
  return outcome;
}

/// The multi-group socket draw: G independent groups of the target over
/// one shared fabric, every group judged by the single-group oracle.  The
/// chaos window hits the links all groups share, so a demux bug (wrong
/// mailbox, cross-group dedup state, a group dying with another's seq)
/// corrupts some group's merged trace and surfaces as a normal finding.
RunOutcome judge_sharded_run(const FuzzTarget& target,
                             const SystemConfig& config,
                             const ViolationPredicate& violated,
                             std::uint64_t seed, long run_index,
                             const LiveGenOptions& gen, int groups) {
  LiveRunPlan plan =
      live_socket_run_plan(target, config, seed, run_index, gen);
  // A separate stream for the sharding-only draws, so adding them never
  // perturbs the single-group plan for the same (seed, run index).
  Rng shard_rng = Rng::for_stream(
      socket_cell_seed(target, config, seed) ^ fnv1a("sharded:"),
      static_cast<std::uint64_t>(run_index));

  ShardedOptions sharded;
  sharded.num_nodes = config.n + shard_rng.next_int(0, 1);
  sharded.num_groups = groups;
  sharded.config = config;
  sharded.live = plan.options;
  sharded.live.crashes.clear();  // see LiveFuzzOptions::groups
  sharded.socket.seed = plan.options.seed;
  sharded.socket.chaos = plan.chaos;

  std::vector<std::vector<Value>> proposals(
      static_cast<std::size_t>(groups));
  for (auto& per_group : proposals) {
    per_group = random_proposals(config, shard_rng);
  }

  RunOutcome outcome;
  outcome.lossy = false;  // the supervisors hold copies; they never drop
  const ShardedResult result = run_sharded(
      sharded, [&](GroupId) { return target.factory; },
      [&](GroupId g) { return proposals[static_cast<std::size_t>(g)]; });
  outcome.counters = result.counters;

  for (const auto& [g, group_outcome] : result.groups) {
    const RunResult& live = group_outcome.result;
    const std::string where =
        "group " + std::to_string(g) + "/" + std::to_string(groups) + ": ";
    const auto& group_proposals = proposals[static_cast<std::size_t>(g)];

    const Round horizon = std::max<Round>(live.trace.rounds_executed(), 1);
    const RunSchedule exported = schedule_from_trace(live.trace);
    KernelOptions kernel_options;
    kernel_options.model = Model::ES;
    kernel_options.max_rounds = horizon;
    const RunResult kernel = run_and_check(config, kernel_options,
                                           target.factory, group_proposals,
                                           exported);

    auto finding = [&](LiveFindingKind kind, std::string description) {
      LiveFinding f;
      f.run_index = run_index;
      f.kind = kind;
      f.description = where + std::move(description);
      f.config = config;
      f.proposals = group_proposals;
      f.schedule = exported;
      f.original = exported;
      f.max_rounds = horizon;
      f.planned_rounds = exported.planned_rounds();
      outcome.finding = std::move(f);
    };

    if (!live.validation.ok()) {
      finding(LiveFindingKind::InvalidTrace,
              "valid sharded draw produced an invalid trace: " +
                  first_violation(live.validation));
      return outcome;
    }
    if (auto what = violated(live, group_outcome.algorithms)) {
      if (target.expect_safe && target.model == Model::ES) {
        finding(LiveFindingKind::Violation, *what);
        return outcome;
      }
      outcome.caught = true;
    }
    if (!kernel.validation.ok()) {
      finding(LiveFindingKind::Divergence,
              "live trace valid, but its kernel replay is not: " +
                  first_violation(kernel.validation));
      return outcome;
    }
    if (decision_rounds(kernel.trace) != decision_rounds(live.trace)) {
      finding(LiveFindingKind::Divergence,
              "kernel replay decision rounds differ from the live run");
      return outcome;
    }
  }
  return outcome;
}

/// Lowest-run-index-wins monoid for the campaign reduce; the finding
/// carries its export because a live run cannot be regenerated later.
struct LiveCell {
  long runs = 0;
  long lossy_runs = 0;
  long flagged_invalid = 0;
  long caught = 0;
  long findings = 0;
  bool wall_cutoff = false;
  SocketCounters counters;
  std::optional<LiveFinding> first;

  void merge(const LiveCell& other) {
    runs += other.runs;
    lossy_runs += other.lossy_runs;
    flagged_invalid += other.flagged_invalid;
    caught += other.caught;
    findings += other.findings;
    wall_cutoff = wall_cutoff || other.wall_cutoff;
    counters += other.counters;
    if (other.first &&
        (!first || other.first->run_index < first->run_index)) {
      first = other.first;
    }
  }
};

}  // namespace

const char* to_string(LiveFindingKind kind) {
  switch (kind) {
    case LiveFindingKind::InvalidTrace: return "invalid-trace";
    case LiveFindingKind::UnflaggedLoss: return "unflagged-loss";
    case LiveFindingKind::Violation: return "violation";
    case LiveFindingKind::Divergence: return "divergence";
  }
  return "?";
}

LiveRunPlan live_fuzz_run_plan(const FuzzTarget& target, SystemConfig config,
                               std::uint64_t seed, long run_index,
                               const LiveGenOptions& gen) {
  Rng rng = Rng::for_stream(live_cell_seed(target, config, seed),
                            static_cast<std::uint64_t>(run_index));
  LiveRunPlan plan;
  plan.lossy = rng.chance(1, 4);
  plan.proposals = random_proposals(config, rng);
  plan.options = plan.lossy ? random_lossy_live_options(config, rng, gen)
                            : random_valid_live_options(config, rng, gen);
  return plan;
}

LiveRunPlan live_socket_run_plan(const FuzzTarget& target, SystemConfig config,
                                 std::uint64_t seed, long run_index,
                                 const LiveGenOptions& gen) {
  Rng rng = Rng::for_stream(socket_cell_seed(target, config, seed),
                            static_cast<std::uint64_t>(run_index));
  LiveRunPlan plan;
  plan.lossy = false;  // the supervisor holds copies; it never drops them
  plan.proposals = random_proposals(config, rng);
  plan.options = random_socket_live_options(config, rng, gen);
  plan.chaos = random_wire_chaos(rng, gen);
  return plan;
}

LiveFuzzReport live_fuzz_target(const FuzzTarget& target, SystemConfig config,
                                const LiveFuzzOptions& options) {
  config.validate();
  const ViolationPredicate violated = find_check(target.check);

  const LiveCell cell = parallel_reduce<LiveCell>(
      options.budget, options.campaign.resolved_chunk(4),
      options.campaign.resolved_jobs(), LiveCell{},
      [&](long, long begin, long end) {
        LiveCell partial;
        for (long i = begin; i < end; ++i) {
          if (options.deadline && Clock::now() >= *options.deadline) {
            partial.wall_cutoff = true;
            break;
          }
          const RunOutcome outcome =
              options.socket && options.groups > 1
                  ? judge_sharded_run(target, config, violated, options.seed,
                                      i, options.gen, options.groups)
                  : judge_run(target, config, violated, options.seed, i,
                              options.gen, options.socket);
          ++partial.runs;
          if (outcome.lossy) ++partial.lossy_runs;
          if (outcome.flagged_invalid) ++partial.flagged_invalid;
          if (outcome.caught) ++partial.caught;
          partial.counters += outcome.counters;
          if (outcome.finding) {
            ++partial.findings;
            if (!partial.first ||
                outcome.finding->run_index < partial.first->run_index) {
              partial.first = outcome.finding;
            }
          }
        }
        return partial;
      });

  LiveFuzzReport report;
  report.target = target.name;
  report.config = config;
  report.model = target.model;
  report.expect_safe = target.expect_safe;
  report.runs = cell.runs;
  report.lossy_runs = cell.lossy_runs;
  report.flagged_invalid = cell.flagged_invalid;
  report.caught = cell.caught;
  report.findings = cell.findings;
  report.wall_cutoff = cell.wall_cutoff;
  report.socket_counters = cell.counters;
  if (!cell.first) return report;

  LiveFinding finding = *cell.first;
  if (options.shrink) {
    // Shrink on the exported schedule with the kernel as the judge — but
    // only when the defect actually reproduces under the kernel (Violation
    // and kernel-reproducible invalidity do; a pure live/kernel divergence
    // has no kernel predicate to preserve).
    KernelOptions kernel_options;
    kernel_options.model = Model::ES;
    kernel_options.max_rounds = finding.max_rounds;
    ShrinkTest still_fails;
    if (finding.kind == LiveFindingKind::Violation) {
      still_fails = [&](const SystemConfig& cfg,
                        const std::vector<Value>& proposals,
                        const RunSchedule& candidate) {
        RunContext ctx(cfg, kernel_options);
        const RunResult& r = ctx.run(target.factory, proposals, candidate);
        return r.validation.ok() && violated(r, ctx.algorithms()).has_value();
      };
    } else {
      still_fails = [&](const SystemConfig& cfg,
                        const std::vector<Value>& proposals,
                        const RunSchedule& candidate) {
        RunContext ctx(cfg, kernel_options);
        return !ctx.run(target.factory, proposals, candidate)
                    .validation.ok();
      };
    }
    if (still_fails(finding.config, finding.proposals, finding.original)) {
      ShrinkResult shrunk = shrink_schedule(finding.config, finding.proposals,
                                            finding.original, still_fails);
      finding.config = shrunk.config;
      finding.proposals = std::move(shrunk.proposals);
      finding.schedule = std::move(shrunk.schedule);
      finding.shrink_stats = shrunk.stats;
      finding.planned_rounds = finding.schedule.planned_rounds();
    }
  }
  report.first = std::move(finding);
  return report;
}

ReproCase live_finding_to_repro(const FuzzTarget& target,
                                const LiveFinding& finding,
                                std::uint64_t seed) {
  // Derive the claim from an actual kernel replay of the (possibly shrunk)
  // export, so every written repro matches its own verdict by construction.
  KernelOptions kernel_options;
  kernel_options.model = Model::ES;
  kernel_options.max_rounds = finding.max_rounds;
  RunContext ctx(finding.config, kernel_options);
  const RunResult& replay =
      ctx.run(target.factory, finding.proposals, finding.schedule);

  ReproCase repro;
  repro.algo = target.name;
  repro.max_rounds = finding.max_rounds;
  repro.proposals = finding.proposals;
  if (!replay.validation.ok()) {
    repro.expect_invalid = true;
  } else {
    repro.expect_violation =
        find_check(target.check)(replay, ctx.algorithms()).has_value();
  }
  repro.comment =
      std::string("live fuzz find (") + to_string(finding.kind) + "): " +
      finding.description +
      "\nexported from a live run; not regenerable from the seed alone" +
      "\ncampaign: fuzz_consensus --live --algo " + target.name + " --seed " +
      std::to_string(seed) + " (run index " +
      std::to_string(finding.run_index) + ")";
  repro.schedule = finding.schedule;
  return repro;
}

std::pair<std::string, ReproCase> live_loss_sample() {
  const SystemConfig cfg{.n = 3, .t = 1};
  LiveOptions o;
  // Three fully-lossy capped rounds, then a synchronous tail: 25 ms GST
  // against 10 ms round caps leaves >= 5 ms between every round boundary
  // and the GST, so the set of dropped copies — and hence the exported
  // bytes — is machine-independent.
  o.gst = std::chrono::milliseconds{25};
  o.loss_prob = 1.0;
  o.round_cap = std::chrono::milliseconds{10};
  o.pre_gst = LatencyModel{std::chrono::microseconds{50},
                           std::chrono::microseconds{0}};
  o.post_gst = LatencyModel{std::chrono::microseconds{20},
                            std::chrono::microseconds{0}};
  o.quorum_grace = std::chrono::milliseconds{5};
  o.max_rounds = 64;
  o.seed = 2002;
  const FuzzTarget* hr = find_fuzz_target("hr");
  const RunResult live =
      run_live(cfg, o, hr->factory, distinct_proposals(cfg.n));

  ReproCase repro;
  repro.algo = "hr";
  repro.expect_invalid = true;
  repro.max_rounds = std::max<Round>(live.trace.rounds_executed(), 1);
  repro.comment =
      "live-fuzz corpus seed: total pre-GST loss (loss_prob=1, GST=25ms,\n"
      "round_cap=10ms) drops every cross copy of the first three rounds;\n"
      "the validator must reject the export (reliable channels).\n"
      "regenerate: fuzz_consensus --live --samples DIR";
  repro.schedule = schedule_from_trace(live.trace);
  return {"live-loss-hr.sched", repro};
}

std::pair<std::string, ReproCase> live_crash_partition_sample() {
  const SystemConfig cfg{.n = 5, .t = 2};
  LiveOptions o;
  // The partition window outlives the GST, so it heals exactly AT the
  // wall-clock GST.  The crash is a round-1 before-send: p4 contributes no
  // copies at all, so every round closes on the full live-copy set and no
  // close ever races p4's crash report against a copy still in flight (a
  // mid-run crash would: the report travels through shared memory while the
  // crasher's previous-round copies are still on the latency path, and
  // which one lands first decides the delivery set).  Margins: the heal
  // releases the held copies 3 ms before any quorum-grace timer can fire.
  o.gst = std::chrono::milliseconds{2};
  PartitionSpec cut;
  cut.from = std::chrono::microseconds{0};
  cut.until = std::chrono::milliseconds{3};
  cut.group = ProcessSet{0, 1, 2};
  o.partitions.push_back(cut);
  o.crashes.push_back(CrashInjection{4, 1, true});
  o.quorum_grace = std::chrono::milliseconds{5};
  o.pre_gst = LatencyModel{std::chrono::microseconds{50},
                           std::chrono::microseconds{100}};
  o.post_gst = LatencyModel{std::chrono::microseconds{20},
                            std::chrono::microseconds{40}};
  o.seed = 7;
  const FuzzTarget* at2 = find_fuzz_target("at2");
  const RunResult live =
      run_live(cfg, o, at2->factory, distinct_proposals(cfg.n));

  ReproCase repro;
  repro.algo = "at2";
  repro.comment =
      "live-fuzz corpus seed: partition {p0,p1,p2} healing at the wall-clock\n"
      "GST (2ms) with p4 crashed before-send from round 1 — the\n"
      "synchronizer's partition/GST boundary.  Model-valid, decides.\n"
      "regenerate: fuzz_consensus --live --samples DIR";
  repro.schedule = schedule_from_trace(live.trace);
  return {"live-crash-partition-at2.sched", repro};
}

std::pair<std::string, ReproCase> live_sharded_sample() {
  const SystemConfig cfg{.n = 3, .t = 1};
  ShardedOptions sharded;
  sharded.num_nodes = 4;  // one endpoint hosts nothing for some groups
  sharded.num_groups = 3;
  sharded.config = cfg;
  // Clean fabric, generous grace: the sample must export the same decision
  // pattern on any machine, so the only adversary here is the demux layer
  // itself (three groups' envelopes interleaved on every shared link).
  sharded.live.quorum_grace = std::chrono::milliseconds{5};
  sharded.live.max_rounds = 64;
  sharded.live.seed = 2026;
  sharded.socket.seed = 2026;
  const FuzzTarget* at2 = find_fuzz_target("at2");
  const ShardedResult result = run_sharded(
      sharded, [&](GroupId) { return at2->factory; },
      [&](GroupId g) {
        std::vector<Value> proposals;
        for (ProcessId pid = 0; pid < cfg.n; ++pid) {
          proposals.push_back(100 * (g + 1) + pid);
        }
        return proposals;
      });
  const RunResult& live = result.groups.at(1).result;

  ReproCase repro;
  repro.algo = "at2";
  repro.max_rounds = std::max<Round>(live.trace.rounds_executed(), 1);
  repro.proposals = {200, 201, 202};  // group 1's slice of the sharded run
  repro.comment =
      "live-fuzz corpus seed: group 1 of a clean 3-group sharded socket run\n"
      "(at2, n=3 per group, 4 node endpoints).  Its envelopes shared every\n"
      "link and seq/ack stream with groups 0 and 2, so this per-group trace\n"
      "exists only because the demux routed correctly.  Model-valid, "
      "decides.\n"
      "regenerate: fuzz_consensus --live --samples DIR";
  repro.schedule = schedule_from_trace(live.trace);
  return {"live-sharded-group-at2.sched", repro};
}

}  // namespace indulgence
