#include "fuzz/cli.hpp"

#include <cstdlib>
#include <ostream>

namespace indulgence {

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is unreliable across libstdc++ versions;
  // strtod + full-consumption check gives the same strictness.
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

void driver_usage(std::ostream& os) {
  os << "usage: fuzz_consensus [options]\n"
        "  --seed S       base seed for schedule generation (default 1)\n"
        "  --budget N     random runs per target (default 2000)\n"
        "  --algo NAME    fuzz one target only (default: all; see --list)\n"
        "  --n N --t T    system size (default n=3 t=1)\n"
        "  --byz B        schedule mode: give B < n/3 processes a Byzantine\n"
        "                 lie budget (equivocate/lie/forge/replay/silence);\n"
        "                 crash draws shrink to t-B, A_{t+2}^auth must\n"
        "                 survive, crash-only algorithms are fair game\n"
        "  --no-shrink    keep the first find as generated\n"
        "  --live         fuzz randomized LiveOptions over real threads\n"
        "                 (default budget 25 runs per target)\n"
        "  --socket       like --live, but over real Unix-domain sockets\n"
        "                 with seeded wire chaos (default budget 10)\n"
        "  --groups G     --socket: run G independent groups of the target\n"
        "                 per draw over one shared multiplexed fabric,\n"
        "                 judging every group's merged trace (default 1)\n"
        "  --sync KIND    live/socket: round synchronizer — lockstep,\n"
        "                 pacemaker, or faststep (default lockstep);\n"
        "                 non-lockstep draws also inject transient\n"
        "                 synchronizer-state corruptions\n"
        "  --wall SECS    stop after SECS wall-clock seconds (any mode)\n"
        "  --samples DIR  live mode: write the deterministic corpus-seed\n"
        "                 repros (loss, crash/partition) to DIR and exit\n"
        "  --out DIR      write each minimized find to DIR/<target>.sched\n"
        "  --replay FILE  re-judge one .sched repro file and exit\n"
        "  --corpus DIR   replay every *.sched in DIR and exit\n"
        "  --list         list registered targets and exit\n"
        "Exit status 0 iff every verdict matched expectations;\n"
        "2 on usage errors.\n";
}

std::optional<DriverOptions> parse_driver_args(int argc,
                                               const char* const* argv,
                                               std::ostream& err) {
  DriverOptions opts;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      err << "fuzz_consensus: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  // One strict-parse step per numeric flag: diagnose and bail on anything
  // from_chars does not consume in full.
  auto numeric = [&](const char* flag, const char* text, auto& out) {
    using T = std::remove_reference_t<decltype(out)>;
    const std::optional<T> parsed = parse_number<T>(text);
    if (!parsed) {
      err << "fuzz_consensus: " << flag << " needs an integer, got '" << text
          << "'\n";
      return false;
    }
    out = *parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--live") {
      opts.live = true;
    } else if (arg == "--socket") {
      opts.socket = true;
      opts.live = true;  // the socket campaign is a live campaign
    } else if (arg == "--seed") {
      if (!(v = value(i)) || !numeric("--seed", v, opts.seed)) {
        return std::nullopt;
      }
    } else if (arg == "--budget") {
      if (!(v = value(i)) || !numeric("--budget", v, opts.budget)) {
        return std::nullopt;
      }
      opts.budget_set = true;
    } else if (arg == "--algo") {
      if (!(v = value(i))) return std::nullopt;
      opts.algo = v;
    } else if (arg == "--groups") {
      if (!(v = value(i)) || !numeric("--groups", v, opts.groups)) {
        return std::nullopt;
      }
    } else if (arg == "--byz") {
      if (!(v = value(i)) || !numeric("--byz", v, opts.byz)) {
        return std::nullopt;
      }
    } else if (arg == "--sync") {
      if (!(v = value(i))) return std::nullopt;
      opts.sync = v;
    } else if (arg == "--n") {
      if (!(v = value(i)) || !numeric("--n", v, opts.n)) return std::nullopt;
    } else if (arg == "--t") {
      if (!(v = value(i)) || !numeric("--t", v, opts.t)) return std::nullopt;
    } else if (arg == "--wall") {
      if (!(v = value(i))) return std::nullopt;
      const std::optional<double> secs = parse_double(v);
      if (!secs || *secs < 0) {
        err << "fuzz_consensus: --wall needs a non-negative number, got '"
            << v << "'\n";
        return std::nullopt;
      }
      opts.wall_secs = *secs;
    } else if (arg == "--out") {
      if (!(v = value(i))) return std::nullopt;
      opts.out_dir = v;
    } else if (arg == "--replay") {
      if (!(v = value(i))) return std::nullopt;
      opts.replay_file = v;
    } else if (arg == "--corpus") {
      if (!(v = value(i))) return std::nullopt;
      opts.corpus_dir = v;
    } else if (arg == "--samples") {
      if (!(v = value(i))) return std::nullopt;
      opts.samples_dir = v;
    } else {
      err << "fuzz_consensus: unknown option " << arg << "\n";
      driver_usage(err);
      return std::nullopt;
    }
  }
  if (opts.budget < 0) {
    err << "fuzz_consensus: --budget must be >= 0\n";
    return std::nullopt;
  }
  if (opts.n < 1 || opts.t < 0 || opts.t >= opts.n) {
    err << "fuzz_consensus: need n >= 1 and 0 <= t < n (got n=" << opts.n
        << " t=" << opts.t << ")\n";
    return std::nullopt;
  }
  if (opts.samples_dir && !opts.live) {
    err << "fuzz_consensus: --samples needs --live\n";
    return std::nullopt;
  }
  if (opts.groups < 1 || opts.groups > 64) {
    err << "fuzz_consensus: --groups must be in 1..64 (got " << opts.groups
        << ")\n";
    return std::nullopt;
  }
  if (opts.groups > 1 && !opts.socket) {
    err << "fuzz_consensus: --groups needs --socket (the multi-group sweep "
           "exercises the shared-fabric demux)\n";
    return std::nullopt;
  }
  if (opts.sync != "lockstep" && opts.sync != "pacemaker" &&
      opts.sync != "faststep") {
    err << "fuzz_consensus: --sync must be one of lockstep, pacemaker, "
           "faststep (got '" << opts.sync << "')\n";
    return std::nullopt;
  }
  if (opts.sync != "lockstep" && !opts.live) {
    err << "fuzz_consensus: --sync needs --live or --socket (the "
           "synchronizers only exist in the live runtime)\n";
    return std::nullopt;
  }
  if (opts.byz < 0) {
    err << "fuzz_consensus: --byz must be >= 0 (got " << opts.byz << ")\n";
    return std::nullopt;
  }
  if (3 * opts.byz >= opts.n) {
    err << "fuzz_consensus: --byz needs 3b < n (got b=" << opts.byz
        << " n=" << opts.n << ")\n";
    return std::nullopt;
  }
  if (opts.byz > opts.t) {
    err << "fuzz_consensus: --byz needs b <= t — liars count against the "
           "resilience bound (got b=" << opts.byz << " t=" << opts.t
        << ")\n";
    return std::nullopt;
  }
  if (opts.byz > 0 && opts.live) {
    err << "fuzz_consensus: --byz is a schedule-mode flag (live Byzantine "
           "injection is driven through LiveOptions)\n";
    return std::nullopt;
  }
  return opts;
}

}  // namespace indulgence
