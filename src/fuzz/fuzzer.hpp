// The fuzzing campaign: seeded random schedules, per-run judging, and
// automatic shrinking of the first find.
//
// One campaign sweeps `budget` random schedules for one target on the
// parallel campaign engine.  Determinism contract (same as every other
// campaign in this repository): run i's schedule is derived from
// Rng::for_stream(seed', i) where seed' mixes the user seed with the target
// name and system config — never from the job count or chunk layout — and
// the reported first find is the lowest-index violating run, so a fuzz
// verdict is reproducible at any thread count and any single run can be
// regenerated from (seed, target, config, index) alone.

#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/targets.hpp"

namespace indulgence {

struct FuzzOptions {
  std::uint64_t seed = 1;
  long budget = 400;        ///< runs per (target, config) cell
  Round max_rounds = 64;    ///< kernel round cap per run
  FuzzGenOptions gen;
  bool shrink = true;       ///< minimize the first find
  CampaignOptions campaign;
  /// Wall-clock budget (same contract as LiveFuzzOptions::deadline): no new
  /// run starts past this point, checked between runs, never mid-run.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// A violating run, as generated and (when enabled) as minimized.
struct FuzzFinding {
  long run_index = -1;        ///< index within the (target, config) cell
  std::string description;    ///< what broke, from the predicate
  SystemConfig config;        ///< post-shrink system (== input when !shrink)
  std::vector<Value> proposals;
  RunSchedule schedule;       ///< post-shrink schedule
  RunSchedule original;       ///< the schedule exactly as generated
  ShrinkStats shrink_stats;
  int planned_rounds = 0;     ///< non-empty rounds of the minimized schedule
};

struct FuzzReport {
  std::string target;
  SystemConfig config;
  bool expect_safe = true;
  /// The sweep's effective expectation: for crash-only sweeps, Survives or
  /// Breaks from expect_safe; for --byz sweeps, the target's byz verdict.
  ByzExpectation expectation = ByzExpectation::Survives;
  int byz = 0;             ///< liar budget the sweep ran under
  long runs = 0;
  long invalid_runs = 0;   ///< generator emitted a model-invalid run (a bug)
  long violations = 0;
  bool wall_cutoff = false;  ///< the deadline stopped the sweep early
  std::optional<FuzzFinding> first;  ///< lowest-index violation, minimized

  /// The fuzz verdict agrees with the paper: safe targets survived every
  /// run, known-broken targets were caught, and the generator never left
  /// the model.  A sweep the wall clock cut short cannot prove a broken
  /// target broken, so a cutoff excuses a missing catch — never an invalid
  /// run or a violation by a safe target.  Vulnerable targets (known-unsafe
  /// under lies, corpus-backed) match either way.
  bool as_expected() const {
    if (invalid_runs != 0) return false;
    switch (expectation) {
      case ByzExpectation::Survives: return violations == 0;
      case ByzExpectation::Breaks: return violations > 0 || wall_cutoff;
      case ByzExpectation::Vulnerable: return true;
    }
    return false;
  }
};

/// Fuzzes one target on one system configuration.
FuzzReport fuzz_target(const FuzzTarget& target, SystemConfig config,
                       const FuzzOptions& options);

/// The per-run schedule the campaign would examine (exposed so tests, and
/// the driver when wrapping a find as a repro, can regenerate any single
/// run from (seed, target, config, index) alone).
RunSchedule fuzz_run_schedule(const FuzzTarget& target, SystemConfig config,
                              std::uint64_t seed, long run_index,
                              const FuzzGenOptions& gen,
                              std::vector<Value>* proposals_out = nullptr);

}  // namespace indulgence
