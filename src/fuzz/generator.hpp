// Seeded random schedule generation for the fuzzer.
//
// The generator reuses the random adversaries of sim/adversary.hpp — which
// maintain the model constraints (t-resilience, reliable channels, eventual
// synchrony after GST) by construction — and records their per-round plans
// into an explicit RunSchedule.  Recording first, running second keeps every
// fuzz run replayable byte-for-byte: the schedule IS the run, and a find can
// be serialized, shrunk, and checked into tests/corpus/ unchanged.
//
// Randomness discipline: one Rng per run, derived by the caller via
// Rng::for_stream(seed, run_index), so a campaign examines the same
// schedules at any job count and any single run replays in isolation.

#pragma once

#include "common/rng.hpp"
#include "sim/adversary.hpp"
#include "sim/schedule.hpp"

namespace indulgence {

struct FuzzGenOptions {
  /// GST is drawn uniformly from [1, max_gst] (ES runs only).
  Round max_gst = 6;

  /// The adversary stays active for gst + [0, extra_rounds] rounds; later
  /// rounds are failure-free and synchronous.
  Round extra_rounds = 3;

  /// Byzantine liar budget b (0 = crash-only, the historical draw stream).
  /// With b > 0 the crash budget shrinks to t - b (crashes + liars <= t,
  /// the A_{t+2}^auth guarantee), b non-crashed liars are drawn, and lie
  /// events are APPENDED to the schedule — all byz draws happen after the
  /// crash-schedule draws, so b = 0 reproduces every historical seed.
  int byz = 0;
};

/// Drives `adversary` for rounds 1..rounds and records the non-empty plans
/// (plus the adversary's GST) into an explicit schedule.
RunSchedule record_adversary(const SystemConfig& config, Adversary& adversary,
                             Round rounds);

/// One random model-valid schedule.  ES draws a GST, per-run probabilities,
/// laggard delays, and crash fates; SCS draws only crashes and crash-round
/// losses.  Everything is derived from `rng`, so equal (config, model, rng
/// state) means an identical schedule.
RunSchedule random_run_schedule(const SystemConfig& config, Model model,
                                Rng& rng, const FuzzGenOptions& options = {});

/// A random proposal vector (shared by the schedule and live fuzzers):
/// half the draws are the canonical distinct 0..n-1, a quarter reversed, a
/// quarter a Fisher-Yates shuffle.  Always a permutation, so validity keeps
/// a meaningful bite.  The draw sequence is part of the per-run determinism
/// contract — changing it renumbers every historical (seed, index) find.
std::vector<Value> random_proposals(const SystemConfig& config, Rng& rng);

}  // namespace indulgence
