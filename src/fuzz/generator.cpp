#include "fuzz/generator.hpp"

#include <utility>

#include "sim/harness.hpp"

namespace indulgence {

RunSchedule record_adversary(const SystemConfig& config, Adversary& adversary,
                             Round rounds) {
  RunSchedule schedule(config);
  schedule.set_gst(adversary.gst());
  for (Round k = 1; k <= rounds; ++k) {
    RoundPlan plan = adversary.plan_round(k);
    if (plan.crashes().empty() && plan.overrides().empty()) continue;
    schedule.plan(k) = std::move(plan);
  }
  return schedule;
}

namespace {

/// One lie value: mostly hostile constants (negative values attack the
/// min-based crash algorithms; kBottom-adjacent ones probe the filters),
/// sometimes an honest-looking proposal.
Value random_lie_value(const SystemConfig& config, Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return -9;
    case 1: return -1;
    case 2: return 0;
    default: return rng.next_int(0, config.n - 1);
  }
}

/// Appends budgeted lie events to a recorded crash schedule.  Liars are
/// drawn from the non-crashed processes; per liar and round one of the five
/// lie classes fires with a per-run probability.  A forge draw sometimes
/// expands into a coordinated burst — the liar mutates its own copy to one
/// target AND forges every other id toward it with the same value — which
/// is the dictionary entry for identity-theft and copy-inflation attacks.
void append_byzantine(const SystemConfig& config, Rng& rng,
                      const FuzzGenOptions& options, RunSchedule& schedule) {
  const int budget = std::min(options.byz, (config.n - 1) / 3);
  if (budget <= 0) return;

  std::vector<ProcessId> candidates;
  const ProcessSet crashed = schedule.crashed_processes();
  for (ProcessId p = 0; p < config.n; ++p) {
    if (!crashed.contains(p)) candidates.push_back(p);
  }
  std::vector<ProcessId> liars;
  for (int i = 0; i < budget && !candidates.empty(); ++i) {
    const std::size_t pick = rng.next_below(candidates.size());
    liars.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  const double lie_prob = 0.2 + 0.6 * rng.next_double();
  // Lies must reach decision rounds: A_{t+2}^auth needs 3 rounds per view,
  // so the horizon extends well past the crash adversary's.
  const Round horizon = schedule.gst() + 3 + rng.next_int(3, 8);
  for (ProcessId liar : liars) {
    for (Round k = 1; k <= horizon; ++k) {
      if (rng.next_double() >= lie_prob) continue;
      const ProcessId victim_target =
          static_cast<ProcessId>(rng.next_int(0, config.n - 1));
      const ProcessId target =
          victim_target == liar ? -1 : victim_target;  // self => broadcast
      const Value value = random_lie_value(config, rng);
      switch (rng.next_below(8)) {
        case 0:
        case 1:
          // Equivocation needs a concrete split target (!= liar).
          schedule.plan(k).add_byzantine(
              {LieKind::Equivocate, liar,
               target < 0 ? (liar + 1) % config.n : target, -1, 0, value,
               true});
          break;
        case 2:
        case 3:
          schedule.plan(k).add_byzantine(
              {LieKind::Lie, liar, target, -1, 0, value, true});
          break;
        case 4:
        case 5: {
          if (rng.chance(1, 2) && target >= 0) {
            // Coordinated burst toward one target.
            schedule.plan(k).add_byzantine(
                {LieKind::Lie, liar, target, -1, 0, value, true});
            for (ProcessId victim = 0; victim < config.n; ++victim) {
              if (victim == liar || victim == target) continue;
              schedule.plan(k).add_byzantine({LieKind::Forge, liar, target,
                                              victim, 0, value, true});
            }
          } else {
            ProcessId victim =
                static_cast<ProcessId>(rng.next_int(0, config.n - 1));
            if (victim == liar) victim = (victim + 1) % config.n;
            schedule.plan(k).add_byzantine(
                {LieKind::Forge, liar, target, victim, 0, value, true});
          }
          break;
        }
        case 6:
          if (k >= 2) {
            schedule.plan(k).add_byzantine({LieKind::Replay, liar, target,
                                            -1, rng.next_int(1, k - 1), 0,
                                            false});
          }
          break;
        default:
          schedule.plan(k).add_byzantine(
              {LieKind::Silence, liar, target, -1, 0, 0, false});
          break;
      }
    }
  }
  schedule.set_byzantine_budget(budget);
}

}  // namespace

RunSchedule random_run_schedule(const SystemConfig& config, Model model,
                                Rng& rng, const FuzzGenOptions& options) {
  // Liars count against the resilience bound: crashes + liars <= t.
  const int max_crashes =
      options.byz > 0 ? std::max(0, config.t - options.byz) : -1;
  if (model == Model::SCS) {
    RandomScsOptions scs;
    scs.crash_prob = 0.2 + 0.6 * rng.next_double();
    scs.before_send_prob = rng.next_double();
    scs.crash_loss_prob = rng.next_double();
    scs.max_crashes = max_crashes;
    RandomScsAdversary adversary(config, scs, rng.next_u64());
    // Crashes only matter while the algorithms are still exchanging state:
    // t + 2 rounds covers every SCS algorithm in the repository.
    const Round horizon =
        config.t + 2 + rng.next_int(0, options.extra_rounds);
    RunSchedule schedule = record_adversary(config, adversary, horizon);
    append_byzantine(config, rng, options, schedule);
    return schedule;
  }

  RandomEsOptions es;
  es.gst = 1 + rng.next_int(0, options.max_gst - 1);
  es.crash_prob = 0.1 + 0.5 * rng.next_double();
  es.before_send_prob = rng.next_double();
  es.laggard_prob = 0.3 + 0.6 * rng.next_double();
  es.delay_prob = 0.3 + 0.6 * rng.next_double();
  es.max_delay = 1 + rng.next_int(0, 3);
  es.crash_loss_prob = rng.next_double();
  es.allow_crash_delay = rng.chance(1, 2);
  es.max_crashes = max_crashes;
  RandomEsAdversary adversary(config, es, rng.next_u64());
  const Round horizon = es.gst + rng.next_int(0, options.extra_rounds);
  RunSchedule schedule = record_adversary(config, adversary, horizon);
  append_byzantine(config, rng, options, schedule);
  return schedule;
}

std::vector<Value> random_proposals(const SystemConfig& config, Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
    case 1:
      return distinct_proposals(config.n);
    case 2: {
      std::vector<Value> reversed(config.n);
      for (int i = 0; i < config.n; ++i) reversed[i] = config.n - 1 - i;
      return reversed;
    }
    default: {
      std::vector<Value> shuffled = distinct_proposals(config.n);
      for (int i = config.n - 1; i > 0; --i) {
        const int j = rng.next_int(0, i);
        std::swap(shuffled[i], shuffled[j]);
      }
      return shuffled;
    }
  }
}

}  // namespace indulgence
