#include "fuzz/generator.hpp"

#include <utility>

#include "sim/harness.hpp"

namespace indulgence {

RunSchedule record_adversary(const SystemConfig& config, Adversary& adversary,
                             Round rounds) {
  RunSchedule schedule(config);
  schedule.set_gst(adversary.gst());
  for (Round k = 1; k <= rounds; ++k) {
    RoundPlan plan = adversary.plan_round(k);
    if (plan.crashes().empty() && plan.overrides().empty()) continue;
    schedule.plan(k) = std::move(plan);
  }
  return schedule;
}

RunSchedule random_run_schedule(const SystemConfig& config, Model model,
                                Rng& rng, const FuzzGenOptions& options) {
  if (model == Model::SCS) {
    RandomScsOptions scs;
    scs.crash_prob = 0.2 + 0.6 * rng.next_double();
    scs.before_send_prob = rng.next_double();
    scs.crash_loss_prob = rng.next_double();
    RandomScsAdversary adversary(config, scs, rng.next_u64());
    // Crashes only matter while the algorithms are still exchanging state:
    // t + 2 rounds covers every SCS algorithm in the repository.
    const Round horizon =
        config.t + 2 + rng.next_int(0, options.extra_rounds);
    return record_adversary(config, adversary, horizon);
  }

  RandomEsOptions es;
  es.gst = 1 + rng.next_int(0, options.max_gst - 1);
  es.crash_prob = 0.1 + 0.5 * rng.next_double();
  es.before_send_prob = rng.next_double();
  es.laggard_prob = 0.3 + 0.6 * rng.next_double();
  es.delay_prob = 0.3 + 0.6 * rng.next_double();
  es.max_delay = 1 + rng.next_int(0, 3);
  es.crash_loss_prob = rng.next_double();
  es.allow_crash_delay = rng.chance(1, 2);
  RandomEsAdversary adversary(config, es, rng.next_u64());
  const Round horizon = es.gst + rng.next_int(0, options.extra_rounds);
  return record_adversary(config, adversary, horizon);
}

std::vector<Value> random_proposals(const SystemConfig& config, Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
    case 1:
      return distinct_proposals(config.n);
    case 2: {
      std::vector<Value> reversed(config.n);
      for (int i = 0; i < config.n; ++i) reversed[i] = config.n - 1 - i;
      return reversed;
    }
    default: {
      std::vector<Value> shuffled = distinct_proposals(config.n);
      for (int i = config.n - 1; i > 0; --i) {
        const int j = rng.next_int(0, i);
        std::swap(shuffled[i], shuffled[j]);
      }
      return shuffled;
    }
  }
}

}  // namespace indulgence
