// The fuzzable algorithm registry.
//
// A FuzzTarget names one algorithm configuration the fuzzer can sweep: the
// factory, the model its guarantees are stated in (FloodSet and friends are
// SCS algorithms; the indulgent stack is ES), the predicate that defines
// "violation" for it, and whether the paper says it must survive (the seven
// real algorithms) or must break (the ablated / truncated A_{t+2} variants,
// which exist precisely so the fuzzer has known bugs to rediscover).
//
// Target names are stable strings: `.sched` repro files in tests/corpus/
// reference them, so renaming a target orphans corpus entries.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lb/attack.hpp"

namespace indulgence {

struct FuzzTarget {
  std::string name;     ///< stable key, referenced by `.sched` repro files
  std::string summary;  ///< one line for --list output
  Model model = Model::ES;
  bool expect_safe = true;      ///< paper's verdict under model-valid runs
  std::string check = "consensus";  ///< default predicate (find_check key)
  AlgorithmFactory factory;
};

/// All registered targets: the seven real algorithms (three SCS FloodSet
/// variants, the indulgent A_{t+2} / A_{<>S} / A_{f+2} stack, Hurfin-Raynal)
/// followed by the deliberately broken variants (X1 ablations, the
/// truncated "A_{t+1}" of E2).
const std::vector<FuzzTarget>& fuzz_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* find_fuzz_target(std::string_view name);

/// Named violation predicates usable in `.sched` files:
///   "consensus"   - agreement, validity, or termination broken;
///   "elimination" - Lemma 6 broken (two distinct non-BOTTOM new estimates).
/// Throws std::invalid_argument for unknown names.
ViolationPredicate find_check(std::string_view name);

/// The "consensus" predicate: agreement_or_validity_violation plus the
/// termination check (every correct process decided within the round cap).
std::optional<std::string> consensus_violation(
    const RunResult& result, const AlgorithmInstances& instances);

}  // namespace indulgence
