// The fuzzable algorithm registry.
//
// A FuzzTarget names one algorithm configuration the fuzzer can sweep: the
// factory, the model its guarantees are stated in (FloodSet and friends are
// SCS algorithms; the indulgent stack is ES), the predicate that defines
// "violation" for it, and whether the paper says it must survive (the seven
// real algorithms) or must break (the ablated / truncated A_{t+2} variants,
// which exist precisely so the fuzzer has known bugs to rediscover).
//
// Target names are stable strings: `.sched` repro files in tests/corpus/
// reference them, so renaming a target orphans corpus entries.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lb/attack.hpp"

namespace indulgence {

/// Expected verdict under budgeted-liar (--byz) sweeps.  `Vulnerable` is for
/// targets that ARE unsafe under lies but whose break needs a coordinated
/// attack the random generator is not guaranteed to stumble on within a
/// smoke budget — the checked-in corpus repros prove those breaks
/// deterministically, so the sweep reports findings without requiring them.
enum class ByzExpectation {
  Survives,    ///< must uphold consensus under every budgeted-liar run
  Breaks,      ///< the byz fuzzer must rediscover the break
  Vulnerable,  ///< known-unsafe; discovery is best-effort, corpus-backed
};

struct FuzzTarget {
  std::string name;     ///< stable key, referenced by `.sched` repro files
  std::string summary;  ///< one line for --list output
  Model model = Model::ES;
  bool expect_safe = true;      ///< paper's verdict under model-valid runs
  std::string check = "consensus";  ///< default predicate (find_check key)
  AlgorithmFactory factory;
  /// Verdict under --byz sweeps (crash-only algorithms default to
  /// Vulnerable: one liar defeats them, but only on the right schedule).
  ByzExpectation byz = ByzExpectation::Vulnerable;
  /// Swept only under --byz: the A_{t+2}^auth ablations are not crash-only
  /// algorithms and carry no verdict for liar-free runs.
  bool byz_only = false;
};

/// All registered targets: the seven real algorithms (three SCS FloodSet
/// variants, the indulgent A_{t+2} / A_{<>S} / A_{f+2} stack, Hurfin-Raynal)
/// followed by the deliberately broken variants (X1 ablations, the
/// truncated "A_{t+1}" of E2).
const std::vector<FuzzTarget>& fuzz_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* find_fuzz_target(std::string_view name);

/// Named violation predicates usable in `.sched` files:
///   "consensus"   - agreement, validity, or termination broken;
///   "elimination" - Lemma 6 broken (two distinct non-BOTTOM new estimates).
/// Throws std::invalid_argument for unknown names.
ViolationPredicate find_check(std::string_view name);

/// The "consensus" predicate: agreement_or_validity_violation plus the
/// termination check (every correct process decided within the round cap).
std::optional<std::string> consensus_violation(
    const RunResult& result, const AlgorithmInstances& instances);

}  // namespace indulgence
