// Delta-debugging shrinker for violating schedules.
//
// Given a schedule on which some predicate fails (an agreement violation, a
// broken lemma, a crash in the harness itself), shrink_schedule greedily
// applies semantics-preserving reductions and keeps each one iff the
// predicate still fails:
//
//   * drop a whole round's plan, a single crash, a single fate override
//     (the fate reverts to Deliver), or a single Byzantine event (the liar
//     budget re-derives from the survivors, so dropping a liar's last lie
//     shrinks the budget too);
//   * shorten a delay (deliver_round toward send_round + 1);
//   * lower GST toward 1;
//   * shrink the system: drop the highest process id when no event uses it,
//     or lower t.
//
// The loop runs to a fixpoint, so the result is 1-minimal with respect to
// the event reductions: removing ANY remaining crash or override un-breaks
// the predicate — which is exactly what the shrinker unit tests assert.
// The test callback owns the definition of "still fails"; for fuzz finds it
// re-runs the schedule and requires the run to stay model-valid AND the
// violation to persist, so shrinking can never walk out of the model.

#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/schedule.hpp"

namespace indulgence {

/// Returns true iff the (config, proposals, schedule) candidate still
/// exhibits the failure being minimized.
using ShrinkTest = std::function<bool(
    const SystemConfig&, const std::vector<Value>&, const RunSchedule&)>;

struct ShrinkStats {
  long attempts = 0;  ///< candidate schedules tried (predicate evaluations)
  long accepted = 0;  ///< reductions that kept the failure
};

struct ShrinkResult {
  SystemConfig config;
  std::vector<Value> proposals;
  RunSchedule schedule;
  ShrinkStats stats;
};

/// Minimizes `schedule` (and the system size) while `still_fails` keeps
/// returning true.  `still_fails` is never called on the input itself — the
/// caller asserts that — and at most `max_attempts` candidates are tried.
ShrinkResult shrink_schedule(SystemConfig config,
                             std::vector<Value> proposals,
                             const RunSchedule& schedule,
                             const ShrinkTest& still_fails,
                             long max_attempts = 20000);

}  // namespace indulgence
