// Command-line parsing for the fuzz_consensus driver.
//
// Lives in the library (not the driver translation unit) so malformed-input
// handling is unit-testable: every numeric flag is parsed with
// std::from_chars in the hardened parse_jobs_env style — trailing junk,
// overflow, and empty values are usage errors reported on stderr, never
// uncaught exceptions.  parse_driver_args returns nullopt on any usage
// error; the driver maps that to exit code 2.

#pragma once

#include <charconv>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace indulgence {

struct DriverOptions {
  std::uint64_t seed = 1;
  long budget = 2000;            ///< runs per target (both modes)
  std::string algo = "all";
  int n = 3;
  int t = 1;
  bool shrink = true;
  bool list = false;
  bool help = false;
  bool live = false;             ///< fuzz LiveOptions over real threads
  bool socket = false;           ///< live sweep over Unix-domain sockets
  int groups = 1;                ///< --socket: groups per run (sharded demux)
  int byz = 0;                   ///< Byzantine liar budget (schedule mode)
  std::string sync = "lockstep"; ///< round synchronizer (live/socket modes)
  double wall_secs = 0;          ///< wall-clock cap, any mode (0 = none)
  bool budget_set = false;       ///< --budget given (live mode defaults lower)
  std::optional<std::string> out_dir;
  std::optional<std::string> replay_file;
  std::optional<std::string> corpus_dir;
  std::optional<std::string> samples_dir;  ///< --live: write corpus seeds
};

/// Strict integer parsing: the whole string must be a base-10 number that
/// fits T.  Returns nullopt on empty input, trailing junk, or overflow.
template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

/// Same contract for floating-point flags (e.g. --wall 0.5).
std::optional<double> parse_double(std::string_view text);

void driver_usage(std::ostream& os);

/// Parses argv.  On any usage error (unknown flag, missing or malformed
/// value) prints a one-line diagnostic to `err` and returns nullopt.
std::optional<DriverOptions> parse_driver_args(int argc, const char* const* argv,
                                               std::ostream& err);

}  // namespace indulgence
