#include "fuzz/shrink.hpp"

#include <algorithm>
#include <set>

namespace indulgence {

namespace {

/// Flat, editable mirror of a RunSchedule: events can be erased or tweaked
/// by index, then rebuilt into a schedule for the next predicate call.
struct Draft {
  Round gst = 1;
  struct Crash {
    Round round;
    CrashEvent event;
  };
  struct Override {
    Round round;
    RoundPlan::Override o;
  };
  struct Byz {
    Round round;
    ByzantineEvent event;
  };
  std::vector<Crash> crashes;
  std::vector<Override> overrides;
  std::vector<Byz> byzantine;

  static Draft from(const RunSchedule& schedule) {
    Draft d;
    d.gst = schedule.gst();
    for (Round k = 1; k <= schedule.last_planned_round(); ++k) {
      const RoundPlan& plan = schedule.plan(k);
      for (const CrashEvent& c : plan.crashes()) d.crashes.push_back({k, c});
      for (const RoundPlan::Override& o : plan.overrides()) {
        if (o.fate.kind == FateKind::Deliver) continue;  // no-op override
        d.overrides.push_back({k, o});
      }
      for (const ByzantineEvent& e : plan.byzantine()) {
        d.byzantine.push_back({k, e});
      }
    }
    return d;
  }

  RunSchedule build(const SystemConfig& config) const {
    RunSchedule schedule(config);
    schedule.set_gst(gst);
    for (const Crash& c : crashes) schedule.plan(c.round).add_crash(c.event);
    for (const Override& o : overrides) {
      schedule.plan(o.round).set_fate(o.o.sender, o.o.receiver, o.o.fate);
    }
    for (const Byz& b : byzantine) {
      schedule.plan(b.round).add_byzantine(b.event);
    }
    // The budget is derived from the surviving liars, so dropping a liar's
    // last event tightens the declared budget automatically.
    return schedule;
  }

  /// Highest process id any event references (-1 when none).
  ProcessId max_pid() const {
    ProcessId pid = -1;
    for (const Crash& c : crashes) pid = std::max(pid, c.event.pid);
    for (const Override& o : overrides) {
      pid = std::max(pid, std::max(o.o.sender, o.o.receiver));
    }
    for (const Byz& b : byzantine) {
      pid = std::max({pid, b.event.liar, b.event.target, b.event.forged});
    }
    return pid;
  }
};

class Shrinker {
 public:
  Shrinker(SystemConfig config, std::vector<Value> proposals, Draft draft,
           const ShrinkTest& still_fails, long max_attempts)
      : config_(config),
        proposals_(std::move(proposals)),
        draft_(std::move(draft)),
        still_fails_(still_fails),
        max_attempts_(max_attempts) {}

  ShrinkResult run() {
    bool changed = true;
    while (changed && stats_.attempts < max_attempts_) {
      changed = false;
      changed |= drop_rounds();
      changed |= drop_crashes();
      changed |= drop_overrides();
      changed |= drop_byzantine();
      changed |= shorten_delays();
      changed |= lower_gst();
      changed |= shrink_system();
    }
    return {config_, proposals_, draft_.build(config_), stats_};
  }

 private:
  /// Tries one candidate draft/config; adopts it iff the failure persists.
  bool accept(const Draft& candidate, const SystemConfig& config,
              const std::vector<Value>& proposals) {
    if (stats_.attempts >= max_attempts_) return false;
    ++stats_.attempts;
    if (!still_fails_(config, proposals, candidate.build(config))) {
      return false;
    }
    ++stats_.accepted;
    draft_ = candidate;
    config_ = config;
    proposals_ = proposals;
    return true;
  }

  bool accept(const Draft& candidate) {
    return accept(candidate, config_, proposals_);
  }

  bool drop_rounds() {
    bool changed = false;
    std::set<Round> rounds;
    for (const Draft::Crash& c : draft_.crashes) rounds.insert(c.round);
    for (const Draft::Override& o : draft_.overrides) rounds.insert(o.round);
    for (const Draft::Byz& b : draft_.byzantine) rounds.insert(b.round);
    for (Round k : rounds) {
      Draft candidate = draft_;
      std::erase_if(candidate.crashes,
                    [k](const Draft::Crash& c) { return c.round == k; });
      std::erase_if(candidate.overrides,
                    [k](const Draft::Override& o) { return o.round == k; });
      std::erase_if(candidate.byzantine,
                    [k](const Draft::Byz& b) { return b.round == k; });
      changed |= accept(candidate);
    }
    return changed;
  }

  bool drop_byzantine() {
    bool changed = false;
    for (std::size_t i = 0; i < draft_.byzantine.size();) {
      Draft candidate = draft_;
      candidate.byzantine.erase(candidate.byzantine.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (accept(candidate)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool drop_crashes() {
    bool changed = false;
    for (std::size_t i = 0; i < draft_.crashes.size();) {
      Draft candidate = draft_;
      candidate.crashes.erase(candidate.crashes.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (accept(candidate)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool drop_overrides() {
    bool changed = false;
    for (std::size_t i = 0; i < draft_.overrides.size();) {
      Draft candidate = draft_;
      candidate.overrides.erase(candidate.overrides.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (accept(candidate)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool shorten_delays() {
    bool changed = false;
    for (std::size_t i = 0; i < draft_.overrides.size(); ++i) {
      if (draft_.overrides[i].o.fate.kind != FateKind::Delay) continue;
      // First jump straight to the minimum lateness, then walk down one
      // round at a time from wherever we are.
      const Round minimum = draft_.overrides[i].round + 1;
      if (draft_.overrides[i].o.fate.deliver_round > minimum) {
        Draft candidate = draft_;
        candidate.overrides[i].o.fate.deliver_round = minimum;
        changed |= accept(candidate);
      }
      while (draft_.overrides[i].o.fate.deliver_round > minimum) {
        Draft candidate = draft_;
        --candidate.overrides[i].o.fate.deliver_round;
        if (!accept(candidate)) break;
        changed = true;
      }
    }
    return changed;
  }

  bool lower_gst() {
    bool changed = false;
    if (draft_.gst > 1) {
      Draft candidate = draft_;
      candidate.gst = 1;
      changed |= accept(candidate);
    }
    while (draft_.gst > 1) {
      Draft candidate = draft_;
      --candidate.gst;
      if (!accept(candidate)) break;
      changed = true;
    }
    return changed;
  }

  bool shrink_system() {
    bool changed = false;
    // Drop the highest process while nothing references it.
    while (config_.n > 3 && draft_.max_pid() < config_.n - 1) {
      SystemConfig smaller = config_;
      --smaller.n;
      if (smaller.t >= smaller.n) break;
      std::vector<Value> proposals = proposals_;
      proposals.resize(static_cast<std::size_t>(smaller.n));
      if (!accept(draft_, smaller, proposals)) break;
      changed = true;
    }
    while (config_.t > 0) {
      SystemConfig smaller = config_;
      --smaller.t;
      if (!accept(draft_, smaller, proposals_)) break;
      changed = true;
    }
    return changed;
  }

  SystemConfig config_;
  std::vector<Value> proposals_;
  Draft draft_;
  const ShrinkTest& still_fails_;
  long max_attempts_;
  ShrinkStats stats_;
};

}  // namespace

ShrinkResult shrink_schedule(SystemConfig config,
                             std::vector<Value> proposals,
                             const RunSchedule& schedule,
                             const ShrinkTest& still_fails,
                             long max_attempts) {
  config.validate();
  Shrinker shrinker(config, std::move(proposals), Draft::from(schedule),
                    still_fails, max_attempts);
  return shrinker.run();
}

}  // namespace indulgence
