#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <utility>

#include "sim/harness.hpp"

namespace indulgence {

namespace {

/// FNV-1a, so the per-target seed stream is stable across platforms and
/// does not depend on the target's position in the registry.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t cell_seed(const FuzzTarget& target, const SystemConfig& config,
                        std::uint64_t seed) {
  return seed ^ fnv1a(target.name) ^
         (static_cast<std::uint64_t>(config.n) << 32) ^
         static_cast<std::uint64_t>(config.t);
}

/// Lowest-run-index-wins monoid for the campaign reduce.
struct CellResult {
  long runs = 0;
  long invalid_runs = 0;
  long violations = 0;
  bool wall_cutoff = false;
  long first_index = -1;
  std::string first_description;

  void merge(const CellResult& other) {
    runs += other.runs;
    invalid_runs += other.invalid_runs;
    violations += other.violations;
    wall_cutoff = wall_cutoff || other.wall_cutoff;
    if (other.first_index >= 0 &&
        (first_index < 0 || other.first_index < first_index)) {
      first_index = other.first_index;
      first_description = other.first_description;
    }
  }
};

}  // namespace

RunSchedule fuzz_run_schedule(const FuzzTarget& target, SystemConfig config,
                              std::uint64_t seed, long run_index,
                              const FuzzGenOptions& gen,
                              std::vector<Value>* proposals_out) {
  Rng rng = Rng::for_stream(cell_seed(target, config, seed),
                            static_cast<std::uint64_t>(run_index));
  std::vector<Value> proposals = random_proposals(config, rng);
  RunSchedule schedule = random_run_schedule(config, target.model, rng, gen);
  if (proposals_out) *proposals_out = std::move(proposals);
  return schedule;
}

FuzzReport fuzz_target(const FuzzTarget& target, SystemConfig config,
                       const FuzzOptions& options) {
  config.validate();
  KernelOptions kernel_options;
  kernel_options.model = target.model;
  kernel_options.max_rounds = options.max_rounds;
  const ViolationPredicate violated = find_check(target.check);

  const CellResult cell = parallel_reduce<CellResult>(
      options.budget, options.campaign.resolved_chunk(25),
      options.campaign.resolved_jobs(), CellResult{},
      [&](long, long begin, long end) {
        CellResult partial;
        RunContext ctx(config, kernel_options);
        for (long i = begin; i < end; ++i) {
          if (options.deadline &&
              std::chrono::steady_clock::now() >= *options.deadline) {
            partial.wall_cutoff = true;
            break;
          }
          std::vector<Value> proposals;
          const RunSchedule schedule = fuzz_run_schedule(
              target, config, options.seed, i, options.gen, &proposals);
          const RunResult& r = ctx.run(target.factory, proposals, schedule);
          ++partial.runs;
          if (!r.validation.ok()) {
            // The generator promises model-valid schedules; an invalid run
            // is a generator bug, never the algorithm's fault.
            ++partial.invalid_runs;
            continue;
          }
          if (auto what = violated(r, ctx.algorithms())) {
            ++partial.violations;
            if (partial.first_index < 0) {
              partial.first_index = i;
              partial.first_description = *what;
            }
          }
        }
        return partial;
      });

  FuzzReport report;
  report.target = target.name;
  report.config = config;
  report.expect_safe = target.expect_safe;
  report.byz = options.gen.byz;
  report.expectation =
      options.gen.byz > 0
          ? target.byz
          : (target.expect_safe ? ByzExpectation::Survives
                                : ByzExpectation::Breaks);
  report.runs = cell.runs;
  report.invalid_runs = cell.invalid_runs;
  report.violations = cell.violations;
  report.wall_cutoff = cell.wall_cutoff;
  if (cell.first_index < 0) return report;

  FuzzFinding finding{cell.first_index,
                      cell.first_description,
                      config,
                      {},
                      RunSchedule(config),
                      RunSchedule(config),
                      {},
                      0};
  finding.original = fuzz_run_schedule(target, config, options.seed,
                                       cell.first_index, options.gen,
                                       &finding.proposals);
  finding.schedule = finding.original;

  if (options.shrink) {
    const ShrinkTest still_fails =
        [&](const SystemConfig& candidate_config,
            const std::vector<Value>& proposals,
            const RunSchedule& candidate) {
          RunContext ctx(candidate_config, kernel_options);
          const RunResult& r = ctx.run(target.factory, proposals, candidate);
          return r.validation.ok() &&
                 violated(r, ctx.algorithms()).has_value();
        };
    ShrinkResult shrunk = shrink_schedule(config, finding.proposals,
                                          finding.original, still_fails);
    finding.config = shrunk.config;
    finding.proposals = std::move(shrunk.proposals);
    finding.schedule = std::move(shrunk.schedule);
    finding.shrink_stats = shrunk.stats;
  }
  finding.planned_rounds = finding.schedule.planned_rounds();
  report.first = std::move(finding);
  return report;
}

}  // namespace indulgence
