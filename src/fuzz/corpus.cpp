#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fuzz/targets.hpp"
#include "sim/harness.hpp"
#include "sim/schedule_io.hpp"

namespace indulgence {

namespace {

[[noreturn]] void meta_fail(int line, const std::string& what) {
  throw std::runtime_error(".sched meta line " + std::to_string(line) + ": " +
                           what);
}

std::string meta_value(const std::string& line, std::size_t key_len) {
  const std::size_t start = line.find_first_not_of(" \t", key_len);
  return start == std::string::npos ? "" : line.substr(start);
}

}  // namespace

std::string print_repro(const ReproCase& repro) {
  std::ostringstream os;
  os << "repro v1\n";
  {
    std::istringstream comment(repro.comment);
    std::string line;
    while (std::getline(comment, line)) {
      os << "#" << (line.empty() ? "" : " ") << line << "\n";
    }
  }
  os << "algo " << repro.algo << "\n";
  if (repro.check) os << "check " << *repro.check << "\n";
  os << "expect "
     << (repro.expect_invalid ? "invalid"
                              : repro.expect_violation ? "violation" : "ok")
     << "\n";
  if (repro.model) os << "model " << to_string(*repro.model) << "\n";
  if (repro.max_rounds != 64) os << "max-rounds " << repro.max_rounds << "\n";
  if (!repro.proposals.empty()) {
    os << "proposals";
    for (Value v : repro.proposals) os << " " << v;
    os << "\n";
  }
  os << print_schedule(repro.schedule);
  return os.str();
}

ReproCase parse_repro(std::string_view text) {
  std::istringstream input{std::string(text)};
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  ReproCase repro;
  std::string comment;
  std::string schedule_text;

  while (std::getline(input, line)) {
    ++line_number;
    // Everything from the 'sched' header on is the schedule document.
    std::istringstream probe(line);
    std::string first;
    probe >> first;
    if (saw_header && first == "sched") {
      std::ostringstream rest;
      rest << line << "\n";
      while (std::getline(input, line)) rest << line << "\n";
      schedule_text = rest.str();
      break;
    }

    if (first.empty()) continue;
    if (first[0] == '#') {
      std::string stripped = line.substr(line.find('#') + 1);
      if (!stripped.empty() && stripped[0] == ' ') stripped.erase(0, 1);
      comment += stripped + "\n";
      continue;
    }
    if (!saw_header) {
      if (first != "repro") {
        meta_fail(line_number, "file must start with 'repro v1'");
      }
      std::string version;
      probe >> version;
      if (version != "v1") {
        meta_fail(line_number, "unsupported repro format version (want v1)");
      }
      saw_header = true;
      continue;
    }

    if (first == "algo") {
      repro.algo = meta_value(line, line.find("algo") + 4);
      if (repro.algo.empty()) meta_fail(line_number, "empty algo name");
    } else if (first == "check") {
      repro.check = meta_value(line, line.find("check") + 5);
    } else if (first == "expect") {
      const std::string v = meta_value(line, line.find("expect") + 6);
      if (v == "violation") {
        repro.expect_violation = true;
      } else if (v == "ok") {
        repro.expect_violation = false;
      } else if (v == "invalid") {
        repro.expect_invalid = true;
      } else {
        meta_fail(line_number,
                  "expect must be 'violation', 'ok', or 'invalid'");
      }
    } else if (first == "model") {
      const std::string v = meta_value(line, line.find("model") + 5);
      if (v == "ES") {
        repro.model = Model::ES;
      } else if (v == "SCS") {
        repro.model = Model::SCS;
      } else {
        meta_fail(line_number, "model must be 'ES' or 'SCS'");
      }
    } else if (first == "max-rounds") {
      std::istringstream value(meta_value(line, line.find("max-rounds") + 10));
      if (!(value >> repro.max_rounds) || repro.max_rounds < 1) {
        meta_fail(line_number, "max-rounds must be a positive integer");
      }
    } else if (first == "proposals") {
      std::istringstream values(meta_value(line, line.find("proposals") + 9));
      Value v = 0;
      while (values >> v) repro.proposals.push_back(v);
      if (repro.proposals.empty()) {
        meta_fail(line_number, "proposals needs at least one value");
      }
    } else {
      meta_fail(line_number, "unknown meta directive '" + first + "'");
    }
  }

  if (!saw_header) meta_fail(line_number, "empty document");
  if (repro.algo.empty()) meta_fail(line_number, "missing 'algo' directive");
  if (schedule_text.empty()) {
    meta_fail(line_number, "missing schedule ('sched v1' section)");
  }
  repro.comment = comment;
  repro.schedule = parse_schedule(schedule_text);
  if (!repro.proposals.empty() &&
      static_cast<int>(repro.proposals.size()) != repro.config().n) {
    meta_fail(line_number, "proposals count must equal n");
  }
  return repro;
}

ReproCase load_repro_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open repro file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_repro(text.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<std::pair<std::string, ReproCase>> load_corpus_dir(
    const std::string& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sched") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<std::pair<std::string, ReproCase>> corpus;
  corpus.reserve(files.size());
  for (const std::filesystem::path& path : files) {
    corpus.emplace_back(path.filename().string(),
                        load_repro_file(path.string()));
  }
  return corpus;
}

ReplayVerdict replay_repro(const std::string& name, const ReproCase& repro) {
  const FuzzTarget* target = find_fuzz_target(repro.algo);
  if (!target) {
    throw std::runtime_error(name + ": unknown fuzz target '" + repro.algo +
                             "'");
  }
  KernelOptions options;
  options.model = repro.model.value_or(target->model);
  options.max_rounds = repro.max_rounds;
  const ViolationPredicate violated =
      find_check(repro.check.value_or(target->check));
  const std::vector<Value> proposals =
      repro.proposals.empty() ? distinct_proposals(repro.config().n)
                              : repro.proposals;

  RunContext ctx(repro.config(), options);
  const RunResult& result = ctx.run(target->factory, proposals,
                                    repro.schedule);
  ReplayVerdict verdict;
  verdict.name = name;
  verdict.expect_violation = repro.expect_violation;
  verdict.expect_invalid = repro.expect_invalid;
  verdict.model_valid = result.validation.ok();
  if (auto what = violated(result, ctx.algorithms())) {
    verdict.violation = true;
    verdict.detail = *what;
  }
  return verdict;
}

namespace {

/// Chunk-ordered verdict accumulator (parallel_reduce monoid).
struct VerdictList {
  std::vector<ReplayVerdict> verdicts;
  void merge(const VerdictList& other) {
    verdicts.insert(verdicts.end(), other.verdicts.begin(),
                    other.verdicts.end());
  }
};

}  // namespace

std::vector<ReplayVerdict> replay_corpus(
    const std::vector<std::pair<std::string, ReproCase>>& corpus,
    CampaignOptions campaign) {
  VerdictList all = parallel_reduce<VerdictList>(
      static_cast<long>(corpus.size()), campaign.resolved_chunk(1),
      campaign.resolved_jobs(), VerdictList{},
      [&](long, long begin, long end) {
        VerdictList partial;
        for (long i = begin; i < end; ++i) {
          const auto& [name, repro] = corpus[static_cast<std::size_t>(i)];
          partial.verdicts.push_back(replay_repro(name, repro));
        }
        return partial;
      });
  return all.verdicts;
}

}  // namespace indulgence
