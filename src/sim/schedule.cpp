#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace indulgence {

const RoundPlan RunSchedule::kEmptyPlan{};

bool RoundPlan::crashes_process(ProcessId pid) const {
  return std::any_of(crashes_.begin(), crashes_.end(),
                     [pid](const CrashEvent& e) { return e.pid == pid; });
}

bool RoundPlan::crashes_before_send(ProcessId pid) const {
  return std::any_of(
      crashes_.begin(), crashes_.end(),
      [pid](const CrashEvent& e) { return e.pid == pid && e.before_send; });
}

void RoundPlan::set_fate(ProcessId sender, ProcessId receiver, Fate fate) {
  for (Override& o : overrides_) {
    if (o.sender == sender && o.receiver == receiver) {
      o.fate = fate;
      return;
    }
  }
  overrides_.push_back({sender, receiver, fate});
}

Fate RoundPlan::fate(ProcessId sender, ProcessId receiver) const {
  for (const Override& o : overrides_) {
    if (o.sender == sender && o.receiver == receiver) return o.fate;
  }
  return Fate::deliver();
}

bool RoundPlan::lies(ProcessId pid) const {
  return std::any_of(byzantine_.begin(), byzantine_.end(),
                     [pid](const ByzantineEvent& e) { return e.liar == pid; });
}

const RoundPlan& RunSchedule::plan(Round k) const {
  auto it = plans_.find(k);
  return it == plans_.end() ? kEmptyPlan : it->second;
}

Round RunSchedule::last_planned_round() const {
  return plans_.empty() ? 0 : plans_.rbegin()->first;
}

int RunSchedule::planned_rounds() const {
  int planned = 0;
  for (const auto& [round, plan] : plans_) {
    if (!plan.crashes().empty() || !plan.overrides().empty() ||
        !plan.byzantine().empty()) {
      ++planned;
    }
  }
  return planned;
}

ProcessSet RunSchedule::crashed_processes() const {
  ProcessSet crashed;
  for (const auto& [round, plan] : plans_) {
    for (const CrashEvent& e : plan.crashes()) crashed.insert(e.pid);
  }
  return crashed;
}

ProcessSet RunSchedule::byzantine_processes() const {
  ProcessSet liars;
  for (const auto& [round, plan] : plans_) {
    for (const ByzantineEvent& e : plan.byzantine()) liars.insert(e.liar);
  }
  return liars;
}

int RunSchedule::byzantine_budget() const {
  if (byzantine_budget_ > 0) return byzantine_budget_;
  return byzantine_processes().size();
}

ScheduleBuilder& ScheduleBuilder::crash(ProcessId pid, Round round,
                                        bool before_send) {
  if (round < 1) throw std::invalid_argument("crash: round must be >= 1");
  schedule_.plan(round).add_crash({pid, before_send});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::lose(ProcessId sender, ProcessId receiver,
                                       Round round) {
  schedule_.plan(round).set_fate(sender, receiver, Fate::lose());
  return *this;
}

ScheduleBuilder& ScheduleBuilder::losing_to(ProcessId sender, Round round,
                                            const ProcessSet& receivers) {
  for (ProcessId r : receivers) lose(sender, r, round);
  return *this;
}

ScheduleBuilder& ScheduleBuilder::delay(ProcessId sender, ProcessId receiver,
                                        Round send_round,
                                        Round deliver_round) {
  if (deliver_round <= send_round) {
    throw std::invalid_argument("delay: deliver_round must exceed send_round");
  }
  schedule_.plan(send_round).set_fate(sender, receiver,
                                      Fate::delay_to(deliver_round));
  return *this;
}

ScheduleBuilder& ScheduleBuilder::delaying_to(ProcessId sender,
                                              Round send_round,
                                              const ProcessSet& receivers,
                                              Round deliver_round) {
  for (ProcessId r : receivers) delay(sender, r, send_round, deliver_round);
  return *this;
}

ScheduleBuilder& ScheduleBuilder::gst(Round k) {
  if (k < 1) throw std::invalid_argument("gst: K must be >= 1");
  schedule_.set_gst(k);
  return *this;
}

ScheduleBuilder& ScheduleBuilder::lie(ProcessId liar, Round round, Value value,
                                      ProcessId target) {
  if (round < 1) throw std::invalid_argument("lie: round must be >= 1");
  schedule_.plan(round).add_byzantine(
      {LieKind::Lie, liar, target, -1, 0, value, true});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::equivocate(ProcessId liar, Round round,
                                             Value value, ProcessId target) {
  if (round < 1) throw std::invalid_argument("equivocate: round must be >= 1");
  schedule_.plan(round).add_byzantine(
      {LieKind::Equivocate, liar, target, -1, 0, value, true});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::forge(ProcessId liar, ProcessId victim,
                                        Round round, ProcessId target,
                                        std::optional<Value> value) {
  if (round < 1) throw std::invalid_argument("forge: round must be >= 1");
  if (victim == liar) throw std::invalid_argument("forge: victim == liar");
  schedule_.plan(round).add_byzantine({LieKind::Forge, liar, target, victim,
                                       0, value.value_or(0),
                                       value.has_value()});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::replay(ProcessId liar, Round round,
                                         Round stale_round, ProcessId target) {
  if (stale_round < 1 || stale_round >= round) {
    throw std::invalid_argument("replay: need 1 <= stale_round < round");
  }
  schedule_.plan(round).add_byzantine(
      {LieKind::Replay, liar, target, -1, stale_round, 0, false});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::silence(ProcessId liar, Round round,
                                          ProcessId target) {
  if (round < 1) throw std::invalid_argument("silence: round must be >= 1");
  schedule_.plan(round).add_byzantine(
      {LieKind::Silence, liar, target, -1, 0, 0, false});
  return *this;
}

ScheduleBuilder& ScheduleBuilder::byzantine_budget(int b) {
  if (b < 0) throw std::invalid_argument("byzantine_budget: b must be >= 0");
  schedule_.set_byzantine_budget(b);
  return *this;
}

}  // namespace indulgence
