// Byzantine behaviour plans: what a lying process does to its outgoing
// round messages.
//
// The crash-shaped adversary (crashes, loss, delay, partitions, chaos)
// never tampers with CONTENT; every fault the stack could inject before
// this layer was an absence.  A ByzantineEvent is a presence: a process
// that equivocates (different payloads to different receivers), lies
// (mutates the value field of its own message), forges (claims another
// sender's id), replays a stale round as fresh, or goes selectively
// silent.
//
// Injection model — "output mutation": a budgeted liar still RUNS the
// honest algorithm; the injection layer rewrites what leaves it.  The
// mutation surface is deliberately narrow: Message::mutated() replaces
// only a payload's primary value field, never certificates, signer ids,
// round stamps, or set-valued evidence.  That models unforgeable
// signatures — a Byzantine process may sign any CLAIM with its own key,
// but cannot fabricate another process' signature or a quorum
// certificate it never collected.  Crash-only payloads carry no signed
// fields at all, so against them every lie lands in full.
//
// Budget semantics: a schedule (or adversary) declares byzantine_budget
// b with 3b < n.  The validator excuses exactly the declared liars from
// the honest-process constraints (no-dup, no-unsent, reliable channels,
// synchronous delivery) and FLAGS any equivocation or forged origin by a
// process outside the budget — misbehaviour must be paid for.

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace indulgence {

/// The five lie classes of the Byzantine layer (ISSUE 10 taxonomy).
enum class LieKind {
  Equivocate,  ///< targeted value mutation: receivers see different payloads
  Lie,         ///< value mutation, typically to every receiver
  Forge,       ///< an extra copy claiming another sender's id
  Replay,      ///< resend a stale round's payload stamped as fresh
  Silence,     ///< suppress the copy (selective omission)
};

const char* to_string(LieKind kind);

/// Inverse of to_string, for schedule parsing; nullopt on unknown words.
std::optional<LieKind> lie_kind_from(std::string_view word);

/// One Byzantine action by `liar` in the round whose RoundPlan holds it.
/// `target` scopes the action to a single receiver (-1 = every receiver);
/// self-delivery is never affected — a process knows its own state.
struct ByzantineEvent {
  LieKind kind = LieKind::Lie;
  ProcessId liar = -1;
  ProcessId target = -1;     ///< receiver scope; -1 = all receivers
  ProcessId forged = -1;     ///< Forge: the claimed (victim) sender id
  Round replay_round = 0;    ///< Replay: the stale round to resend
  Value value = 0;           ///< Lie/Equivocate (always), Forge (if has_value)
  bool has_value = false;    ///< Forge: also mutate the forged payload

  /// True when this event affects the copy addressed to `receiver`.
  bool applies_to(ProcessId receiver) const {
    return target < 0 || target == receiver;
  }

  /// Human-readable rendering for diagnostics and test failures.
  std::string describe() const;

  friend bool operator==(const ByzantineEvent&,
                         const ByzantineEvent&) = default;
};

/// A ByzantineEvent bound to the round it fires in — the round-indexed plan
/// form the live transports consume (schedules instead key events by their
/// RoundPlan).  Round-indexed, like CrashInjection, so a lying scenario is
/// reproducible across machines.
struct ByzantineInjection {
  Round round = 0;
  ByzantineEvent event;

  friend bool operator==(const ByzantineInjection&,
                         const ByzantineInjection&) = default;
};

}  // namespace indulgence
