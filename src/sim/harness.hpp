// Run drivers and canonical adversarial schedules.
//
// The harness is the layer tests, examples, and benchmarks share: it runs a
// consensus algorithm under an adversary, validates the produced trace
// against the model, and summarizes the consensus properties; and it
// provides the classical worst-case synchronous schedules (staggered crash
// chains, crash bursts, coordinator assassination) used by the paper's
// complexity claims.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/adversary.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "sim/validator.hpp"

namespace indulgence {

struct RunResult {
  RunTrace trace;
  ValidationReport validation;

  std::optional<Round> global_decision_round;
  bool agreement = false;
  bool validity = false;
  bool termination = false;  ///< every correct process decided within the cap

  /// True when the trace is model-valid and all three consensus properties
  /// hold.
  bool ok() const {
    return validation.ok() && agreement && validity && termination;
  }

  std::string summary() const;
};

/// The algorithm instances of a finished run, for state inspection (tests
/// read final Halt sets / new estimates through them).
using AlgorithmInstances = std::vector<std::unique_ptr<RoundAlgorithm>>;

/// Runs one consensus instance and checks everything.  When
/// `algorithms_out` is non-null it receives the per-process algorithm
/// instances, which stay valid after the run.
RunResult run_and_check(SystemConfig config, KernelOptions options,
                        const AlgorithmFactory& factory,
                        const std::vector<Value>& proposals,
                        Adversary& adversary,
                        AlgorithmInstances* algorithms_out = nullptr);

/// Schedule-based convenience overload.
RunResult run_and_check(SystemConfig config, KernelOptions options,
                        const AlgorithmFactory& factory,
                        const std::vector<Value>& proposals,
                        const RunSchedule& schedule,
                        AlgorithmInstances* algorithms_out = nullptr);

/// A reusable run driver for sweep workers.  Owns the kernel scratch
/// buffers, the trace, and the RunResult, so executing a run allocates only
/// what the run itself needs (algorithm instances and message payloads) —
/// a worker runs millions of schedules without reallocating storage.  Each
/// campaign worker keeps its own RunContext; contexts are not thread-safe.
class RunContext {
 public:
  RunContext(SystemConfig config, KernelOptions options);

  /// Runs one schedule and re-checks it.  The returned reference (and the
  /// instances below) stay valid until the next run() call.
  const RunResult& run(const AlgorithmFactory& factory,
                       const std::vector<Value>& proposals,
                       const RunSchedule& schedule);

  /// As above, under an arbitrary adversary.
  const RunResult& run(const AlgorithmFactory& factory,
                       const std::vector<Value>& proposals,
                       Adversary& adversary);

  /// Algorithm instances of the last run, for state inspection.
  const std::vector<std::unique_ptr<RoundAlgorithm>>& algorithms() const {
    return scratch_.algorithms;
  }

 private:
  SystemConfig config_;
  KernelOptions options_;
  KernelScratch scratch_;
  RunResult result_;
};

/// Distinct proposals 0, 1, ..., n-1 (process i proposes i).
std::vector<Value> distinct_proposals(int n);

/// All processes propose v.
std::vector<Value> uniform_proposals(int n, Value v);

// --- canonical synchronous schedules -------------------------------------

/// No crashes at all.
RunSchedule failure_free_schedule(SystemConfig config);

/// The classical staggered chain: for k = 1..crashes, process k-1 crashes in
/// round k and its round-k message reaches ONLY process k (all other copies
/// are lost).  With process 0 holding the minimum proposal this hides the
/// decisive value for `crashes` rounds — the worst case that forces
/// FloodSet to use all t + 1 rounds.
RunSchedule staggered_chain_schedule(SystemConfig config, int crashes);

/// `f` processes (ids 0..f-1) crash in round `round`, before their send
/// phase when `before_send`.
RunSchedule crash_burst_schedule(SystemConfig config, int f, Round round,
                                 bool before_send);

/// Kills the coordinator/leader of each 2-round attempt: process a crashes
/// in round 2a + 1 (a = 0..crashes-1) before sending — the worst case for
/// rotating-coordinator algorithms (Hurfin-Raynal needs 2t + 2 rounds).
RunSchedule coordinator_assassin_schedule(SystemConfig config, int crashes);

/// An asynchronous prefix: rounds 1..gst-1 delay all messages from the
/// `laggards` set by one round (a moving partition), synchronous from gst
/// on, with `f` staggered crashes in rounds gst .. gst+f-1.  Used by the
/// eventual-decision experiments (runs "synchronous after round k").
/// Requires f <= t, |laggards| <= t, and f + |laggards| <= n (the crashes
/// skip the laggards, so there must be enough other processes to kill).
/// A positive `horizon` additionally requires the last crash round
/// gst + f - 1 to stay within it — rejecting schedules whose crashes would
/// fall beyond the run's round cap and silently never happen.
RunSchedule async_prefix_schedule(SystemConfig config, Round gst,
                                  const ProcessSet& laggards, int f,
                                  Round horizon = 0);

/// A library of hostile synchronous schedules with exactly `crashes`
/// crashes (chains with different delivery targets, bursts early and late,
/// before/after-send variants).  Used for worst-case sweeps where
/// exhaustive search is too expensive.
std::vector<RunSchedule> hostile_sync_schedules(SystemConfig config,
                                                int crashes);

/// Worst-case synchronous global decision round of `factory` over the
/// hostile schedule library and the given proposal vectors; checks every
/// run is valid, agreeing, and terminating.  Throws on any failure (the
/// lowest-indexed failing run wins, at any job count).  The (schedule,
/// proposal) grid is swept on the campaign engine.
Round worst_case_sync_decision_round(SystemConfig config,
                                     const AlgorithmFactory& factory,
                                     const std::vector<std::vector<Value>>&
                                         proposal_vectors,
                                     int crashes, Round max_rounds = 256,
                                     CampaignOptions campaign = {});

}  // namespace indulgence
