#include "sim/adversary.hpp"

#include <vector>

namespace indulgence {

namespace {

/// Picks a uniformly random member of a non-empty set.
ProcessId random_member(Rng& rng, const ProcessSet& set) {
  const int idx = static_cast<int>(rng.next_below(set.size()));
  int i = 0;
  for (ProcessId pid : set) {
    if (i++ == idx) return pid;
  }
  return set.min();  // unreachable
}

}  // namespace

RandomEsAdversary::RandomEsAdversary(SystemConfig config,
                                     RandomEsOptions options,
                                     std::uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  config_.validate();
  crash_budget_ =
      options_.max_crashes < 0 ? config_.t : options_.max_crashes;
  if (crash_budget_ > config_.t) crash_budget_ = config_.t;
  if (options_.gst < 1) options_.gst = 1;
}

RoundPlan RandomEsAdversary::plan_round(Round k) {
  RoundPlan plan;
  const ProcessSet all = ProcessSet::all(config_.n);

  // 1. Possibly crash one process this round.
  ProcessSet crashing_now;
  if (crash_budget_ > 0 && rng_.next_double() < options_.crash_prob) {
    const ProcessSet alive = all - crashed_;
    if (!alive.empty()) {
      const ProcessId victim = random_member(rng_, alive);
      const bool before_send = rng_.next_double() < options_.before_send_prob;
      plan.add_crash({victim, before_send});
      crashing_now.insert(victim);
      crashed_.insert(victim);
      --crash_budget_;
    }
  }

  const bool synchronous = k >= options_.gst;

  // 2. Pre-GST: choose a laggard set among live processes.  The union of
  //    (already crashed + crashing now + laggards) must stay within t so that
  //    every receiver still gets >= n - t current-round messages.
  ProcessSet laggards;
  if (!synchronous) {
    int slots = config_.t - crashed_.size();
    ProcessSet candidates = all - crashed_;
    while (slots > 0 && !candidates.empty() &&
           rng_.next_double() < options_.laggard_prob) {
      const ProcessId lag = random_member(rng_, candidates);
      laggards.insert(lag);
      candidates.erase(lag);
      --slots;
    }
  }

  // 3. Fates.  Laggards' messages may be delayed per receiver; crash-round
  //    messages may be lost or delayed; everything else is delivered.
  for (ProcessId sender : laggards) {
    for (ProcessId receiver : all) {
      if (receiver == sender) continue;
      if (rng_.next_double() < options_.delay_prob) {
        const Round arrival = k + 1 + rng_.next_int(0, options_.max_delay - 1);
        plan.set_fate(sender, receiver, Fate::delay_to(arrival));
      }
    }
  }
  for (ProcessId sender : crashing_now) {
    if (plan.crashes_before_send(sender)) continue;  // nothing was sent
    for (ProcessId receiver : all) {
      if (receiver == sender) continue;
      if (rng_.next_double() < options_.crash_loss_prob) {
        plan.set_fate(sender, receiver, Fate::lose());
      } else if (options_.allow_crash_delay && rng_.next_double() < 0.5) {
        const Round arrival = k + 1 + rng_.next_int(0, options_.max_delay - 1);
        plan.set_fate(sender, receiver, Fate::delay_to(arrival));
      }
    }
  }
  return plan;
}

RandomScsAdversary::RandomScsAdversary(SystemConfig config,
                                       RandomScsOptions options,
                                       std::uint64_t seed)
    : config_(config), options_(options), rng_(seed) {
  config_.validate();
  crash_budget_ =
      options_.max_crashes < 0 ? config_.t : options_.max_crashes;
  if (crash_budget_ > config_.t) crash_budget_ = config_.t;
}

RoundPlan RandomScsAdversary::plan_round(Round) {
  RoundPlan plan;
  const ProcessSet all = ProcessSet::all(config_.n);
  if (crash_budget_ > 0 && rng_.next_double() < options_.crash_prob) {
    const ProcessSet alive = all - crashed_;
    if (!alive.empty()) {
      const ProcessId victim = random_member(rng_, alive);
      const bool before_send = rng_.next_double() < options_.before_send_prob;
      plan.add_crash({victim, before_send});
      crashed_.insert(victim);
      --crash_budget_;
      if (!before_send) {
        for (ProcessId receiver : all) {
          if (receiver == victim) continue;
          if (rng_.next_double() < options_.crash_loss_prob) {
            plan.set_fate(victim, receiver, Fate::lose());
          }
        }
      }
    }
  }
  return plan;
}

}  // namespace indulgence
