#include "sim/validator.hpp"

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace indulgence {

namespace {

class Checker {
 public:
  explicit Checker(const RunTrace& trace) : trace_(trace) {}

  ValidationReport run() {
    index();
    check_byzantine_budget();
    check_crashes();
    check_deliveries();
    check_halts();
    if (trace_.model() == Model::SCS) {
      check_no_delays();
      check_synchronous_delivery(/*from_round=*/1);
    } else {
      check_t_resilience();
      check_synchronous_delivery(trace_.gst());
      check_reliable_channels();
    }
    return std::move(report_);
  }

 private:
  void fail(const std::string& what) { report_.violations.push_back(what); }

  bool is_liar(ProcessId pid) const { return byz_.contains(pid); }

  /// The declared liar set must fit its budget, and the budget must satisfy
  /// the Byzantine resilience bound 3b < n.  Everything a DECLARED liar
  /// emits is excused below; misbehaviour attributable to anyone else is
  /// flagged — lies must be paid for out of the budget.
  void check_byzantine_budget() {
    const int b = trace_.byzantine_budget();
    const int n = trace_.config().n;
    if (b < 0) fail("byzantine budget is negative");
    if (b > 0 && 3 * b >= n) {
      fail("byzantine budget b=" + std::to_string(b) +
           " violates 3b < n (n=" + std::to_string(n) + ")");
    }
    if (static_cast<int>(byz_.size()) > b) {
      fail(std::to_string(byz_.size()) +
           " declared liars exceed byzantine budget b=" + std::to_string(b));
    }
    for (ProcessId pid : byz_) {
      if (pid < 0 || pid >= n) {
        fail("declared liar p" + std::to_string(pid) + " is out of range");
      }
    }
  }

  void index() {
    for (const CrashRecord& c : trace_.crashes()) {
      crash_round_[c.pid] = c.round;
      if (c.before_send) before_send_.insert(c.pid);
    }
    for (const SendRecord& s : trace_.sends()) {
      sent_.insert({s.sender, s.round});
    }
    for (const DeliveryRecord& d : trace_.deliveries()) {
      delivered_.insert({{d.sender, d.send_round}, d.receiver});
    }
    for (const PendingRecord& p : trace_.pending()) {
      pending_.insert({{p.sender, p.send_round}, p.receiver});
    }
  }

  /// A process "completes round k" iff it has not crashed in round <= k.
  bool completes_round(ProcessId pid, Round k) const {
    auto it = crash_round_.find(pid);
    return it == crash_round_.end() || it->second > k;
  }

  bool crashes_in_round(ProcessId pid, Round k) const {
    auto it = crash_round_.find(pid);
    return it != crash_round_.end() && it->second == k;
  }

  void check_crashes() {
    const int t = trace_.config().t;
    std::set<ProcessId> seen;
    for (const CrashRecord& c : trace_.crashes()) {
      if (seen.count(c.pid)) {
        fail("process p" + std::to_string(c.pid) + " crashes twice");
      }
      seen.insert(c.pid);
      if (c.round < 1 || c.round > trace_.rounds_executed()) {
        fail("crash of p" + std::to_string(c.pid) + " at out-of-run round " +
             std::to_string(c.round));
      }
    }
    if (static_cast<int>(seen.size()) > t) {
      fail("more than t = " + std::to_string(t) + " crashes (" +
           std::to_string(seen.size()) + ")");
    }
  }

  void check_deliveries() {
    std::set<std::tuple<ProcessId, Round, ProcessId>> seen;
    std::map<std::pair<ProcessId, Round>, const DeliveryRecord*> first_copy;
    for (const DeliveryRecord& d : trace_.deliveries()) {
      std::ostringstream who;
      who << "message p" << d.sender << "->p" << d.receiver << " (sent@"
          << d.send_round << ", recv@" << d.recv_round << ")";
      // A copy whose recorded emitter differs from its claimed sender is a
      // forgery; only a budgeted liar may be its emitter.
      if (d.origin >= 0 && d.origin != d.sender && !is_liar(d.origin)) {
        fail(who.str() + " forged by unbudgeted p" + std::to_string(d.origin));
      }
      if (d.recv_round < d.send_round) {
        fail(who.str() + " received before being sent");
      }
      if (!completes_round(d.receiver, d.recv_round)) {
        fail(who.str() + " received by a crashed process");
      }
      if (is_liar(d.emitter())) continue;  // budgeted: excused below here
      // (A budgeted liar may forge a copy in the receiver's own name and
      // route it through any fate, so the self-delivery timing rule only
      // binds honest emitters.)
      if (d.sender == d.receiver && d.recv_round != d.send_round) {
        fail(who.str() + " self-delivery must be in-round");
      }
      if (!sent_.count({d.sender, d.send_round})) {
        fail(who.str() + " received without having been sent");
      }
      if (!seen.insert({d.sender, d.send_round, d.receiver}).second) {
        fail(who.str() + " received more than once");
      }
      // Equivocation: one (sender, send round) broadcast must carry ONE
      // payload to every receiver.  Pointer equality first — the kernel
      // shares a broadcast's payload, so honest runs never pay for the
      // describe() comparison.
      if (d.payload != nullptr) {
        auto [it, inserted] =
            first_copy.try_emplace({d.sender, d.send_round}, &d);
        if (!inserted && it->second->payload != d.payload &&
            it->second->payload->describe() != d.payload->describe()) {
          fail("equivocation by unbudgeted p" + std::to_string(d.sender) +
               ": round-" + std::to_string(d.send_round) +
               " broadcast differs across receivers (" +
               it->second->payload->describe() + " vs " +
               d.payload->describe() + ")");
        }
      }
    }
    // Self-delivery presence: every sender completing its send round must
    // have received its own message in that round.
    for (const SendRecord& s : trace_.sends()) {
      if (!completes_round(s.sender, s.round)) continue;
      if (!delivered_.count({{s.sender, s.round}, s.sender})) {
        std::string msg = "p";
        msg += std::to_string(s.sender);
        msg += " missed its own round-";
        msg += std::to_string(s.round);
        msg += " message";
        fail(msg);
      }
    }
  }

  void check_halts() {
    // Kernel enforces halted => decided; re-check decisions uniqueness here.
    std::set<ProcessId> decided;
    for (const DecisionRecord& d : trace_.decisions()) {
      if (!decided.insert(d.pid).second) {
        std::string msg = "p";
        msg += std::to_string(d.pid);
        msg += " decided twice";
        fail(msg);
      }
    }
  }

  void check_no_delays() {
    for (const DeliveryRecord& d : trace_.deliveries()) {
      if (d.recv_round != d.send_round) {
        fail("SCS: delayed delivery p" + std::to_string(d.sender) + "->p" +
             std::to_string(d.receiver) + " sent@" +
             std::to_string(d.send_round) + " recv@" +
             std::to_string(d.recv_round));
      }
    }
    if (!trace_.pending().empty()) {
      fail("SCS: messages pending at end of run");
    }
  }

  /// From `from_round` on, a sender that does not crash in round k must be
  /// received in-round by every process completing round k.
  void check_synchronous_delivery(Round from_round) {
    for (const SendRecord& s : trace_.sends()) {
      if (s.round < from_round) continue;
      if (crashes_in_round(s.sender, s.round)) continue;
      if (is_liar(s.sender)) continue;  // selective silence is budgeted
      for (ProcessId r = 0; r < trace_.config().n; ++r) {
        if (!completes_round(r, s.round)) continue;
        if (!delivered_in_round(s.sender, s.round, r)) {
          fail("synchrony: p" + std::to_string(r) + " missed round-" +
               std::to_string(s.round) + " message of live sender p" +
               std::to_string(s.sender));
        }
      }
    }
  }

  bool delivered_in_round(ProcessId sender, Round round,
                          ProcessId receiver) const {
    for (const DeliveryRecord& d : trace_.deliveries()) {
      if (d.sender == sender && d.send_round == round &&
          d.receiver == receiver && d.recv_round == round) {
        return true;
      }
    }
    return false;
  }

  void check_t_resilience() {
    const SystemConfig& cfg = trace_.config();
    for (Round k = 1; k <= trace_.rounds_executed(); ++k) {
      for (ProcessId r = 0; r < cfg.n; ++r) {
        if (!completes_round(r, k)) continue;
        if (is_liar(r)) continue;  // the model owes liars nothing
        const ProcessSet heard = trace_.in_round_senders(r, k);
        const int got = heard.size();
        // A silent liar may withhold its copy without spending a crash:
        // the resilience floor only binds what HONEST senders deliver.
        const int missing_liars = (byz_ - heard).size();
        if (got + missing_liars < cfg.n - cfg.t) {
          fail("t-resilience: p" + std::to_string(r) + " received only " +
               std::to_string(got) + " round-" + std::to_string(k) +
               " messages in round " + std::to_string(k));
        }
      }
    }
  }

  void check_reliable_channels() {
    const ProcessSet correct = trace_.correct();
    for (const SendRecord& s : trace_.sends()) {
      if (!correct.contains(s.sender)) continue;
      for (ProcessId r : correct) {
        const std::pair<std::pair<ProcessId, Round>, ProcessId> key{
            {s.sender, s.round}, r};
        if (!delivered_.count(key) && !pending_.count(key)) {
          fail("reliable channels: round-" + std::to_string(s.round) +
               " message p" + std::to_string(s.sender) + "->p" +
               std::to_string(r) + " (both correct) was lost");
        }
      }
    }
  }

  const RunTrace& trace_;
  ValidationReport report_;
  const ProcessSet byz_ = trace_.byzantine();

  std::map<ProcessId, Round> crash_round_;
  std::set<ProcessId> before_send_;
  std::set<std::pair<ProcessId, Round>> sent_;
  std::set<std::pair<std::pair<ProcessId, Round>, ProcessId>> delivered_;
  std::set<std::pair<std::pair<ProcessId, Round>, ProcessId>> pending_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  if (ok()) return "trace valid";
  std::ostringstream os;
  os << violations.size() << " model violation(s):\n";
  for (const std::string& v : violations) os << "  - " << v << '\n';
  return os.str();
}

ValidationReport validate_trace(const RunTrace& trace) {
  return Checker(trace).run();
}

void expect_valid(const RunTrace& trace) {
  const ValidationReport report = validate_trace(trace);
  if (!report.ok()) {
    throw std::runtime_error(report.to_string() + "\ntrace:\n" +
                             trace.to_string());
  }
}

}  // namespace indulgence
