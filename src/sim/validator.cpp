#include "sim/validator.hpp"

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace indulgence {

namespace {

class Checker {
 public:
  explicit Checker(const RunTrace& trace) : trace_(trace) {}

  ValidationReport run() {
    index();
    check_crashes();
    check_deliveries();
    check_halts();
    if (trace_.model() == Model::SCS) {
      check_no_delays();
      check_synchronous_delivery(/*from_round=*/1);
    } else {
      check_t_resilience();
      check_synchronous_delivery(trace_.gst());
      check_reliable_channels();
    }
    return std::move(report_);
  }

 private:
  void fail(const std::string& what) { report_.violations.push_back(what); }

  void index() {
    for (const CrashRecord& c : trace_.crashes()) {
      crash_round_[c.pid] = c.round;
      if (c.before_send) before_send_.insert(c.pid);
    }
    for (const SendRecord& s : trace_.sends()) {
      sent_.insert({s.sender, s.round});
    }
    for (const DeliveryRecord& d : trace_.deliveries()) {
      delivered_.insert({{d.sender, d.send_round}, d.receiver});
    }
    for (const PendingRecord& p : trace_.pending()) {
      pending_.insert({{p.sender, p.send_round}, p.receiver});
    }
  }

  /// A process "completes round k" iff it has not crashed in round <= k.
  bool completes_round(ProcessId pid, Round k) const {
    auto it = crash_round_.find(pid);
    return it == crash_round_.end() || it->second > k;
  }

  bool crashes_in_round(ProcessId pid, Round k) const {
    auto it = crash_round_.find(pid);
    return it != crash_round_.end() && it->second == k;
  }

  void check_crashes() {
    const int t = trace_.config().t;
    std::set<ProcessId> seen;
    for (const CrashRecord& c : trace_.crashes()) {
      if (seen.count(c.pid)) {
        fail("process p" + std::to_string(c.pid) + " crashes twice");
      }
      seen.insert(c.pid);
      if (c.round < 1 || c.round > trace_.rounds_executed()) {
        fail("crash of p" + std::to_string(c.pid) + " at out-of-run round " +
             std::to_string(c.round));
      }
    }
    if (static_cast<int>(seen.size()) > t) {
      fail("more than t = " + std::to_string(t) + " crashes (" +
           std::to_string(seen.size()) + ")");
    }
  }

  void check_deliveries() {
    std::set<std::tuple<ProcessId, Round, ProcessId>> seen;
    for (const DeliveryRecord& d : trace_.deliveries()) {
      std::ostringstream who;
      who << "message p" << d.sender << "->p" << d.receiver << " (sent@"
          << d.send_round << ", recv@" << d.recv_round << ")";
      if (!sent_.count({d.sender, d.send_round})) {
        fail(who.str() + " received without having been sent");
      }
      if (d.recv_round < d.send_round) {
        fail(who.str() + " received before being sent");
      }
      if (!seen.insert({d.sender, d.send_round, d.receiver}).second) {
        fail(who.str() + " received more than once");
      }
      if (!completes_round(d.receiver, d.recv_round)) {
        fail(who.str() + " received by a crashed process");
      }
      if (d.sender == d.receiver && d.recv_round != d.send_round) {
        fail(who.str() + " self-delivery must be in-round");
      }
    }
    // Self-delivery presence: every sender completing its send round must
    // have received its own message in that round.
    for (const SendRecord& s : trace_.sends()) {
      if (!completes_round(s.sender, s.round)) continue;
      if (!delivered_.count({{s.sender, s.round}, s.sender})) {
        fail("p" + std::to_string(s.sender) + " missed its own round-" +
             std::to_string(s.round) + " message");
      }
    }
  }

  void check_halts() {
    // Kernel enforces halted => decided; re-check decisions uniqueness here.
    std::set<ProcessId> decided;
    for (const DecisionRecord& d : trace_.decisions()) {
      if (!decided.insert(d.pid).second) {
        fail("p" + std::to_string(d.pid) + " decided twice");
      }
    }
  }

  void check_no_delays() {
    for (const DeliveryRecord& d : trace_.deliveries()) {
      if (d.recv_round != d.send_round) {
        fail("SCS: delayed delivery p" + std::to_string(d.sender) + "->p" +
             std::to_string(d.receiver) + " sent@" +
             std::to_string(d.send_round) + " recv@" +
             std::to_string(d.recv_round));
      }
    }
    if (!trace_.pending().empty()) {
      fail("SCS: messages pending at end of run");
    }
  }

  /// From `from_round` on, a sender that does not crash in round k must be
  /// received in-round by every process completing round k.
  void check_synchronous_delivery(Round from_round) {
    for (const SendRecord& s : trace_.sends()) {
      if (s.round < from_round) continue;
      if (crashes_in_round(s.sender, s.round)) continue;
      for (ProcessId r = 0; r < trace_.config().n; ++r) {
        if (!completes_round(r, s.round)) continue;
        if (!delivered_in_round(s.sender, s.round, r)) {
          fail("synchrony: p" + std::to_string(r) + " missed round-" +
               std::to_string(s.round) + " message of live sender p" +
               std::to_string(s.sender));
        }
      }
    }
  }

  bool delivered_in_round(ProcessId sender, Round round,
                          ProcessId receiver) const {
    for (const DeliveryRecord& d : trace_.deliveries()) {
      if (d.sender == sender && d.send_round == round &&
          d.receiver == receiver && d.recv_round == round) {
        return true;
      }
    }
    return false;
  }

  void check_t_resilience() {
    const SystemConfig& cfg = trace_.config();
    for (Round k = 1; k <= trace_.rounds_executed(); ++k) {
      for (ProcessId r = 0; r < cfg.n; ++r) {
        if (!completes_round(r, k)) continue;
        const int got = trace_.in_round_senders(r, k).size();
        if (got < cfg.n - cfg.t) {
          fail("t-resilience: p" + std::to_string(r) + " received only " +
               std::to_string(got) + " round-" + std::to_string(k) +
               " messages in round " + std::to_string(k));
        }
      }
    }
  }

  void check_reliable_channels() {
    const ProcessSet correct = trace_.correct();
    for (const SendRecord& s : trace_.sends()) {
      if (!correct.contains(s.sender)) continue;
      for (ProcessId r : correct) {
        const std::pair<std::pair<ProcessId, Round>, ProcessId> key{
            {s.sender, s.round}, r};
        if (!delivered_.count(key) && !pending_.count(key)) {
          fail("reliable channels: round-" + std::to_string(s.round) +
               " message p" + std::to_string(s.sender) + "->p" +
               std::to_string(r) + " (both correct) was lost");
        }
      }
    }
  }

  const RunTrace& trace_;
  ValidationReport report_;

  std::map<ProcessId, Round> crash_round_;
  std::set<ProcessId> before_send_;
  std::set<std::pair<ProcessId, Round>> sent_;
  std::set<std::pair<std::pair<ProcessId, Round>, ProcessId>> delivered_;
  std::set<std::pair<std::pair<ProcessId, Round>, ProcessId>> pending_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  if (ok()) return "trace valid";
  std::ostringstream os;
  os << violations.size() << " model violation(s):\n";
  for (const std::string& v : violations) os << "  - " << v << '\n';
  return os.str();
}

ValidationReport validate_trace(const RunTrace& trace) {
  return Checker(trace).run();
}

void expect_valid(const RunTrace& trace) {
  const ValidationReport report = validate_trace(trace);
  if (!report.ok()) {
    throw std::runtime_error(report.to_string() + "\ntrace:\n" +
                             trace.to_string());
  }
}

}  // namespace indulgence
