#include "sim/message.hpp"

namespace indulgence {

std::vector<ProcessId> current_round_senders(const Delivery& delivery,
                                             Round round) {
  std::vector<ProcessId> senders;
  senders.reserve(delivery.size());
  for (const Envelope& env : delivery) {
    if (env.send_round == round) senders.push_back(env.sender);
  }
  return senders;
}

}  // namespace indulgence
