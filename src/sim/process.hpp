// The interface every round-based distributed algorithm implements to run on
// the simulation kernel.
//
// The kernel drives each process instance through the two phases of the
// paper's round structure (Sect. 1.2): a send phase (message_for_round) and
// a receive phase (on_round).  Decisions and halting are observed through
// const accessors so the kernel can record them in the trace.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "sim/message.hpp"

namespace indulgence {

class RoundAlgorithm {
 public:
  virtual ~RoundAlgorithm() = default;

  /// Called once before round 1 with this process' proposal value.
  virtual void propose(Value v) = 0;

  /// Send phase of round k: the message this process broadcasts.  Must not
  /// return nullptr (per footnote 1, every process sends in every round; use
  /// a dummy payload if the algorithm has nothing to say).
  virtual MessagePtr message_for_round(Round k) = 0;

  /// Receive phase of round k: `delivered` holds every envelope arriving in
  /// this round — current-round messages plus any delayed ones.  A process
  /// suspects exactly the senders with no current-round envelope.
  virtual void on_round(Round k, const Delivery& delivered) = 0;

  /// The decision, once made (stable thereafter).
  virtual std::optional<Value> decision() const = 0;

  /// True once the algorithm has returned from propose(*); the kernel then
  /// substitutes HaltedMessage dummies for this process.  A halted process
  /// must have decided.
  virtual bool halted() const = 0;

  /// Algorithm name for traces and reports, e.g. "A_{t+2}".
  virtual std::string name() const = 0;
};

/// Creates the algorithm instance for one process.
using AlgorithmFactory = std::function<std::unique_ptr<RoundAlgorithm>(
    ProcessId self, const SystemConfig& config)>;

}  // namespace indulgence
