// Trace statistics: message and suspicion counts derived from run traces.
//
// The paper measures time in rounds; a systems reader also wants the
// message complexity.  These helpers derive both from recorded traces, so
// the numbers are exact (not sampled): payload sends, point-to-point
// deliveries, delayed deliveries, dummy (halted) traffic, and per-round
// suspicion counts (processes missing from a receiver's current-round
// senders).

#pragma once

#include <string>

#include "sim/trace.hpp"

namespace indulgence {

struct TraceStats {
  Round rounds = 0;

  long sends = 0;             ///< broadcasts performed (one per sender-round)
  long dummy_sends = 0;       ///< kernel HaltedMessage broadcasts
  long deliveries = 0;        ///< point-to-point receipts
  long delayed_deliveries = 0;///< receipts after the sending round
  long lost_messages = 0;     ///< sent copies never delivered nor pending
  long suspicions = 0;        ///< (receiver, round, sender) gaps: the round-k
                              ///< message of a live sender missing at k

  /// Point-to-point message copies put on the wire (sends * (n - 1),
  /// excluding self-delivery).
  long wire_messages = 0;

  /// Monoid merge for campaign workers: counters add, `rounds` keeps the
  /// maximum.  Chunk-ordered merging of partials equals the sequential
  /// aggregate exactly (all fields are integers).
  void merge(const TraceStats& other);

  std::string to_string() const;
};

/// Derives statistics from a trace.  `until_round` limits the window (0
/// means the whole trace) — pass the global decision round to count the
/// cost *of reaching* the decision.
TraceStats compute_stats(const RunTrace& trace, Round until_round = 0);

}  // namespace indulgence
