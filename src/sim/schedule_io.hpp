// Text serialization for RunSchedule: the `.sched` format.
//
// Every run in this repository is driven by a RunSchedule; serializing one
// turns a transient counterexample (a fuzzer find, an attack-search witness,
// a hand-built scenario) into a file that replays byte-for-byte.  The format
// is line-oriented and human-editable, because repro files get checked into
// tests/corpus/ and read in code review:
//
//   sched v1
//   system n=3 t=1
//   gst 2
//   round 1
//     crash p0 after-send
//     lose p0 -> p2
//     delay p1 -> p2 @3
//   round 2
//     crash p1 before-send
//
// Directives:
//   system n=<N> t=<T>     -- required, before any round
//   gst <K>                -- optional, default 1
//   round <k>              -- opens round k's plan (k >= 1, ascending)
//   crash p<i> before-send|after-send
//   lose p<i> -> p<j>      -- round message i -> j never arrives
//   delay p<i> -> p<j> @<r>-- round message i -> j arrives in round r
//
// '#' starts a comment (whole-line or trailing); blank lines and leading
// indentation are ignored.  print_schedule emits the canonical form: rounds
// ascending, crashes before fate overrides, no empty round blocks — so
// parse(print(s)) == s structurally and print(parse(text)) is a fixpoint.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/schedule.hpp"

namespace indulgence {

/// Malformed `.sched` input; what() names the line number and the problem.
class ScheduleParseError : public std::runtime_error {
 public:
  explicit ScheduleParseError(int line, const std::string& what)
      : std::runtime_error(".sched line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_ = 0;
};

/// Canonical text form of `schedule` (see the grammar above).
std::string print_schedule(const RunSchedule& schedule);

/// Parses a full `.sched` document.  Throws ScheduleParseError on any
/// malformed, duplicate, or out-of-range directive.
RunSchedule parse_schedule(std::string_view text);

}  // namespace indulgence
