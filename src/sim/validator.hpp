// Independent model-conformance checking of run traces.
//
// The validator re-derives every constraint of the paper's models
// (Sect. 1.2) from the raw trace — it shares no state with the kernel or
// the adversaries, so it catches bugs in either:
//
//   common    - at most t crashes, each process crashes at most once;
//             - messages are received at most once, never without having
//               been sent, never before being sent, never by a crashed
//               process;
//             - self-delivery is in-round;
//             - halting implies a decision.
//   SCS       - no delayed messages at all;
//             - a sender that does not crash in round k is received
//               in-round by every process completing round k.
//   ES        - t-resilience: every process completing round k receives
//               round-k messages from at least n - t processes in round k;
//             - eventual synchrony: from round gst() on, SCS-style delivery
//               for non-crashing senders;
//             - reliable channels: a message from a correct process to a
//               correct process is delivered or still pending, never lost.

#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace indulgence {

struct ValidationReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Checks `trace` against its own model() and gst().
ValidationReport validate_trace(const RunTrace& trace);

/// Throwing convenience used in tests: aborts with the full report.
void expect_valid(const RunTrace& trace);

}  // namespace indulgence
