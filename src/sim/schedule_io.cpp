#include "sim/schedule_io.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

namespace indulgence {

namespace {

std::string trimmed(std::string line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Tokenizer over one directive line, with parse-error context.
class Line {
 public:
  Line(const std::string& text, int number) : stream_(text), number_(number) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw ScheduleParseError(number_, what);
  }

  std::string word(const std::string& expected_what) {
    std::string token;
    if (!(stream_ >> token)) fail("expected " + expected_what);
    return token;
  }

  /// Optional trailing token; nullopt at end of line.
  std::optional<std::string> maybe_word() {
    std::string token;
    if (!(stream_ >> token)) return std::nullopt;
    return token;
  }

  int integer(const std::string& expected_what) {
    const std::string token = word(expected_what);
    return parse_int(token, expected_what);
  }

  int parse_int(const std::string& token, const std::string& expected_what) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(token, &used);
    } catch (const std::exception&) {
      fail("expected " + expected_what + ", got '" + token + "'");
    }
    if (used != token.size()) {
      fail("expected " + expected_what + ", got '" + token + "'");
    }
    return value;
  }

  ProcessId process(const std::string& role) {
    const std::string token = word(role + " (p<id>)");
    if (token.empty() || token[0] != 'p') {
      fail(role + " must look like p<id>, got '" + token + "'");
    }
    return parse_int(token.substr(1), role + " id");
  }

  void arrow() {
    const std::string token = word("'->'");
    if (token != "->") fail("expected '->', got '" + token + "'");
  }

  Round at_round() {
    const std::string token = word("'@<round>'");
    if (token.empty() || token[0] != '@') {
      fail("expected '@<round>', got '" + token + "'");
    }
    return parse_int(token.substr(1), "delivery round");
  }

  void done() {
    std::string extra;
    if (stream_ >> extra) fail("trailing token '" + extra + "'");
  }

 private:
  std::istringstream stream_;
  int number_;
};

}  // namespace

std::string print_schedule(const RunSchedule& schedule) {
  std::ostringstream os;
  os << "sched v1\n";
  os << "system n=" << schedule.config().n << " t=" << schedule.config().t
     << "\n";
  if (schedule.gst() != 1) os << "gst " << schedule.gst() << "\n";
  if (schedule.byzantine_budget() > 0) {
    os << "byz-budget " << schedule.byzantine_budget() << "\n";
  }
  for (Round k = 1; k <= schedule.last_planned_round(); ++k) {
    const RoundPlan& plan = schedule.plan(k);
    // A block is worth printing only if it has a crash, a Byzantine event,
    // or a non-Deliver fate; Deliver overrides are no-ops and are dropped
    // below, so a plan holding nothing else must not leave an empty
    // `round` header behind.
    const bool has_content =
        !plan.crashes().empty() || !plan.byzantine().empty() ||
        std::any_of(plan.overrides().begin(), plan.overrides().end(),
                    [](const RoundPlan::Override& o) {
                      return o.fate.kind != FateKind::Deliver;
                    });
    if (!has_content) continue;
    os << "round " << k << "\n";
    for (const CrashEvent& c : plan.crashes()) {
      os << "  crash p" << c.pid
         << (c.before_send ? " before-send" : " after-send") << "\n";
    }
    for (const RoundPlan::Override& o : plan.overrides()) {
      switch (o.fate.kind) {
        case FateKind::Lose:
          os << "  lose p" << o.sender << " -> p" << o.receiver << "\n";
          break;
        case FateKind::Delay:
          os << "  delay p" << o.sender << " -> p" << o.receiver << " @"
             << o.fate.deliver_round << "\n";
          break;
        case FateKind::Deliver:
          // Deliver is the default fate; an explicit Deliver override is
          // semantically a no-op, so the canonical form drops it.
          break;
      }
    }
    for (const ByzantineEvent& e : plan.byzantine()) {
      os << "  byz " << e.describe() << "\n";
    }
  }
  return os.str();
}

RunSchedule parse_schedule(std::string_view text) {
  std::istringstream input{std::string(text)};
  std::string raw;
  int line_number = 0;

  bool saw_header = false;
  std::optional<RunSchedule> schedule;
  Round current_round = 0;

  auto need_system = [&](const Line& line) -> RunSchedule& {
    if (!schedule) line.fail("'system n=<N> t=<T>' must come first");
    return *schedule;
  };
  auto need_round = [&](const Line& line) -> RoundPlan& {
    if (current_round == 0) line.fail("event outside any 'round <k>' block");
    return need_system(line).plan(current_round);
  };
  auto check_pid = [&](const Line& line, ProcessId pid,
                       const std::string& role) {
    if (pid < 0 || pid >= need_system(line).config().n) {
      line.fail(role + " p" + std::to_string(pid) + " out of range [0, " +
                std::to_string(need_system(line).config().n) + ")");
    }
  };

  while (std::getline(input, raw)) {
    ++line_number;
    const std::string text_line = trimmed(raw);
    if (text_line.empty()) continue;
    Line line(text_line, line_number);
    const std::string directive = line.word("a directive");

    if (!saw_header) {
      if (directive != "sched") line.fail("file must start with 'sched v1'");
      if (line.word("format version") != "v1") {
        line.fail("unsupported schedule format version (want v1)");
      }
      line.done();
      saw_header = true;
      continue;
    }

    if (directive == "system") {
      if (schedule) line.fail("duplicate 'system' directive");
      SystemConfig config;
      for (const char* key : {"n=", "t="}) {
        const std::string token = line.word(std::string(key) + "<int>");
        if (token.rfind(key, 0) != 0) {
          line.fail("expected '" + std::string(key) + "<int>', got '" + token +
                    "'");
        }
        (key[0] == 'n' ? config.n : config.t) =
            line.parse_int(token.substr(2), std::string(1, key[0]));
      }
      line.done();
      try {
        schedule.emplace(config);
      } catch (const std::invalid_argument& e) {
        line.fail(e.what());
      }
    } else if (directive == "gst") {
      const Round k = line.integer("GST round");
      line.done();
      if (k < 1) line.fail("gst must be >= 1");
      need_system(line).set_gst(k);
    } else if (directive == "round") {
      const Round k = line.integer("round number");
      line.done();
      need_system(line);
      if (k < 1) line.fail("round must be >= 1");
      if (k <= current_round) line.fail("rounds must be strictly ascending");
      current_round = k;
    } else if (directive == "crash") {
      const ProcessId pid = line.process("crash victim");
      const std::string phase = line.word("'before-send' or 'after-send'");
      line.done();
      check_pid(line, pid, "crash victim");
      if (phase != "before-send" && phase != "after-send") {
        line.fail("expected 'before-send' or 'after-send', got '" + phase +
                  "'");
      }
      need_round(line).add_crash({pid, phase == "before-send"});
    } else if (directive == "lose") {
      const ProcessId sender = line.process("sender");
      line.arrow();
      const ProcessId receiver = line.process("receiver");
      line.done();
      check_pid(line, sender, "sender");
      check_pid(line, receiver, "receiver");
      need_round(line).set_fate(sender, receiver, Fate::lose());
    } else if (directive == "byz-budget") {
      const int b = line.integer("byzantine budget");
      line.done();
      if (b < 0) line.fail("byz-budget must be >= 0");
      need_system(line).set_byzantine_budget(b);
    } else if (directive == "byz") {
      const std::string kind_word =
          line.word("a lie kind (equivocate|lie|forge|replay|silence)");
      const std::optional<LieKind> kind = lie_kind_from(kind_word);
      if (!kind) line.fail("unknown lie kind '" + kind_word + "'");
      ByzantineEvent e;
      e.kind = *kind;
      e.liar = line.process("liar");
      check_pid(line, e.liar, "liar");
      if (e.kind == LieKind::Forge) {
        const std::string as = line.word("'as'");
        if (as != "as") line.fail("expected 'as', got '" + as + "'");
        e.forged = line.process("forged sender");
        check_pid(line, e.forged, "forged sender");
        if (e.forged == e.liar) line.fail("forge: victim must differ from liar");
      } else if (e.kind == LieKind::Replay) {
        e.replay_round = line.at_round();
        if (e.replay_round < 1 || e.replay_round >= current_round) {
          line.fail("replay round must satisfy 1 <= r < current round");
        }
      }
      line.arrow();
      const std::string target = line.word("receiver ('*' or p<id>)");
      if (target == "*") {
        e.target = -1;
      } else if (!target.empty() && target[0] == 'p') {
        e.target = line.parse_int(target.substr(1), "receiver id");
        check_pid(line, e.target, "receiver");
      } else {
        line.fail("receiver must be '*' or p<id>, got '" + target + "'");
      }
      const bool needs_value =
          e.kind == LieKind::Lie || e.kind == LieKind::Equivocate;
      if (needs_value) {
        const std::string token = line.word("value=<int>");
        if (token.rfind("value=", 0) != 0) {
          line.fail("expected 'value=<int>', got '" + token + "'");
        }
        e.value = line.parse_int(token.substr(6), "lied value");
        e.has_value = true;
      } else if (e.kind == LieKind::Forge) {
        if (std::optional<std::string> token = line.maybe_word()) {
          if (token->rfind("value=", 0) != 0) {
            line.fail("expected 'value=<int>', got '" + *token + "'");
          }
          e.value = line.parse_int(token->substr(6), "forged value");
          e.has_value = true;
        }
      }
      line.done();
      need_round(line).add_byzantine(e);
    } else if (directive == "delay") {
      const ProcessId sender = line.process("sender");
      line.arrow();
      const ProcessId receiver = line.process("receiver");
      const Round deliver = line.at_round();
      line.done();
      check_pid(line, sender, "sender");
      check_pid(line, receiver, "receiver");
      if (deliver <= current_round) {
        line.fail("delayed delivery must land after its send round");
      }
      need_round(line).set_fate(sender, receiver, Fate::delay_to(deliver));
    } else {
      line.fail("unknown directive '" + directive + "'");
    }
  }

  if (!saw_header) throw ScheduleParseError(line_number, "empty document");
  if (!schedule) {
    throw ScheduleParseError(line_number, "missing 'system' directive");
  }
  return *std::move(schedule);
}

}  // namespace indulgence
