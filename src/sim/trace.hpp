// Run traces: the complete observable history of one simulated run, plus
// the consensus-level queries (agreement, validity, global decision round)
// used throughout tests, benchmarks, and the lower-bound explorer.
//
// Traces deliberately record raw events — crashes, deliveries, decisions,
// halts, pending (still-delayed) messages — so that the model validator can
// re-check every ES/SCS constraint independently of the kernel that
// produced the trace.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "sim/message.hpp"

namespace indulgence {

struct CrashRecord {
  Round round = 0;
  ProcessId pid = -1;
  bool before_send = false;
};

struct DeliveryRecord {
  Round recv_round = 0;
  ProcessId receiver = -1;
  ProcessId sender = -1;
  Round send_round = 0;
  MessagePtr payload;  ///< may be null in synthetic traces built by tests
  /// Actual emitter of the copy; -1 means origin == sender.  A forged copy
  /// carries the victim in `sender` and the liar here (sim/byzantine.hpp).
  ProcessId origin = -1;

  ProcessId emitter() const { return origin < 0 ? sender : origin; }
};

struct SendRecord {
  Round round = 0;
  ProcessId sender = -1;
  bool dummy = false;  ///< kernel-substituted HaltedMessage
};

struct DecisionRecord {
  Round round = 0;
  ProcessId pid = -1;
  Value value = 0;
};

struct PendingRecord {
  ProcessId sender = -1;
  ProcessId receiver = -1;
  Round send_round = 0;
  Round deliver_round = 0;  ///< scheduled arrival (beyond the executed rounds)
};

class RunTrace {
 public:
  RunTrace(SystemConfig config, Model model, Round gst)
      : config_(config), model_(model), gst_(gst) {}

  /// An empty trace awaiting reset(); used by reusable run contexts.
  RunTrace() = default;

  /// Clears all recorded events and rebinds the trace to a new run, keeping
  /// the vectors' capacity.  Sweep workers reset one trace per run instead
  /// of reallocating storage for each of millions of runs.
  void reset(SystemConfig config, Model model, Round gst) {
    config_ = config;
    model_ = model;
    gst_ = gst;
    rounds_executed_ = 0;
    terminated_ = false;
    byzantine_ = ProcessSet{};
    byzantine_budget_ = 0;
    proposals_.clear();
    crashes_.clear();
    sends_.clear();
    deliveries_.clear();
    decisions_.clear();
    pending_.clear();
    halts_.clear();
  }

  // --- recording (kernel-side) ----------------------------------------

  void record_proposal(ProcessId pid, Value v) { proposals_[pid] = v; }
  void record_crash(CrashRecord r) { crashes_.push_back(r); }
  void record_send(SendRecord r) { sends_.push_back(r); }
  void record_delivery(DeliveryRecord r) { deliveries_.push_back(r); }
  void record_decision(DecisionRecord r) { decisions_.push_back(r); }
  void record_halt(ProcessId pid, Round round) { halts_[pid] = round; }
  void record_pending(PendingRecord r) { pending_.push_back(r); }
  void set_rounds_executed(Round k) { rounds_executed_ = k; }
  void set_terminated(bool ok) { terminated_ = ok; }

  /// Declares pid a budgeted liar (sim/byzantine.hpp).  The validator
  /// excuses declared liars from honest-process constraints and checks the
  /// declared set against the budget.
  void record_byzantine(ProcessId pid) { byzantine_.insert(pid); }
  void set_byzantine_budget(int b) { byzantine_budget_ = b; }

  /// Rebinds the eventual-synchrony round after recording.  The live runtime
  /// (src/net) derives a run's GST from the finished trace — the smallest
  /// round from which synchrony held — because a wall-clock GST has no
  /// a-priori round number.
  void set_gst(Round k) { gst_ = k; }

  // --- raw access -------------------------------------------------------

  const SystemConfig& config() const { return config_; }
  Model model() const { return model_; }
  Round gst() const { return gst_; }
  Round rounds_executed() const { return rounds_executed_; }

  /// True when the kernel stopped because every live process had decided;
  /// false when it hit its round cap first.
  bool terminated() const { return terminated_; }

  const std::vector<CrashRecord>& crashes() const { return crashes_; }
  const std::vector<SendRecord>& sends() const { return sends_; }
  const std::vector<DeliveryRecord>& deliveries() const { return deliveries_; }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  const std::vector<PendingRecord>& pending() const { return pending_; }
  const std::map<ProcessId, Value>& proposals() const { return proposals_; }

  // --- queries ------------------------------------------------------------

  /// Processes that crash anywhere in the trace.
  ProcessSet crashed() const;

  /// Declared liars and their budget (empty / 0 on crash-only runs).
  const ProcessSet& byzantine() const { return byzantine_; }
  int byzantine_budget() const { return byzantine_budget_; }

  /// Processes that neither crash nor lie — the run's correct processes.
  /// Byzantine processes are excluded: the model makes no promises about
  /// them (they need not decide, and their channels need not be reliable).
  ProcessSet correct() const;

  /// Round in which pid crashed, if it did.
  std::optional<Round> crash_round(ProcessId pid) const;

  std::optional<Decision> decision_of(ProcessId pid) const;

  /// True iff every correct process decided.
  bool all_correct_decided() const;

  /// The paper's global decision round (Sect. 1.3): the highest round at
  /// which any process decides, provided at least one process decided and
  /// every correct process decided; nullopt otherwise.
  std::optional<Round> global_decision_round() const;

  /// Uniform agreement: no two processes (correct or not) decide
  /// differently.  Declared liars are exempt — a Byzantine process may
  /// "decide" anything; only honest decisions must agree.
  bool agreement_ok() const;

  /// Validity: every decided value was proposed by some process.  With
  /// declared liars this weakens to WEAK validity (vacuously true): a
  /// consistent lie is indistinguishable from a real proposal, so only the
  /// all-honest case pins decided values to proposals.
  bool validity_ok() const;

  /// Senders of round-`round` messages received by `receiver` during round
  /// `round` itself (i.e. the processes `receiver` does NOT suspect).
  ProcessSet in_round_senders(ProcessId receiver, Round round) const;

  /// Everything `receiver` got in the receive phase of `round`.
  std::vector<DeliveryRecord> delivered_to(ProcessId receiver,
                                           Round round) const;

  /// Round-by-round human-readable rendering (examples, failure messages).
  std::string to_string() const;

 private:
  SystemConfig config_{};
  Model model_ = Model::ES;
  Round gst_ = 1;
  Round rounds_executed_ = 0;
  bool terminated_ = false;
  ProcessSet byzantine_;
  int byzantine_budget_ = 0;

  std::map<ProcessId, Value> proposals_;
  std::vector<CrashRecord> crashes_;
  std::vector<SendRecord> sends_;
  std::vector<DeliveryRecord> deliveries_;
  std::vector<DecisionRecord> decisions_;
  std::vector<PendingRecord> pending_;
  std::map<ProcessId, Round> halts_;
};

}  // namespace indulgence
