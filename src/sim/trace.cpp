#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace indulgence {

ProcessSet RunTrace::crashed() const {
  ProcessSet s;
  for (const CrashRecord& c : crashes_) s.insert(c.pid);
  return s;
}

ProcessSet RunTrace::correct() const {
  return ProcessSet::all(config_.n) - crashed() - byzantine_;
}

std::optional<Round> RunTrace::crash_round(ProcessId pid) const {
  for (const CrashRecord& c : crashes_) {
    if (c.pid == pid) return c.round;
  }
  return std::nullopt;
}

std::optional<Decision> RunTrace::decision_of(ProcessId pid) const {
  for (const DecisionRecord& d : decisions_) {
    if (d.pid == pid) return Decision{d.value, d.round};
  }
  return std::nullopt;
}

bool RunTrace::all_correct_decided() const {
  for (ProcessId pid : correct()) {
    if (!decision_of(pid)) return false;
  }
  return true;
}

std::optional<Round> RunTrace::global_decision_round() const {
  if (decisions_.empty() || !all_correct_decided()) return std::nullopt;
  Round max_round = 0;
  for (const DecisionRecord& d : decisions_) {
    max_round = std::max(max_round, d.round);
  }
  return max_round;
}

bool RunTrace::agreement_ok() const {
  const DecisionRecord* first = nullptr;
  for (const DecisionRecord& d : decisions_) {
    if (byzantine_.contains(d.pid)) continue;  // liars may "decide" anything
    if (first == nullptr) {
      first = &d;
    } else if (d.value != first->value) {
      return false;
    }
  }
  return true;
}

bool RunTrace::validity_ok() const {
  // Weak validity under declared liars: a consistent lie is
  // indistinguishable from a real proposal, so the property is vacuous.
  if (!byzantine_.empty()) return true;
  return std::all_of(
      decisions_.begin(), decisions_.end(), [this](const DecisionRecord& d) {
        return std::any_of(proposals_.begin(), proposals_.end(),
                           [&d](const auto& kv) { return kv.second == d.value; });
      });
}

ProcessSet RunTrace::in_round_senders(ProcessId receiver, Round round) const {
  ProcessSet s;
  for (const DeliveryRecord& d : deliveries_) {
    if (d.receiver == receiver && d.recv_round == round &&
        d.send_round == round) {
      s.insert(d.sender);
    }
  }
  return s;
}

std::vector<DeliveryRecord> RunTrace::delivered_to(ProcessId receiver,
                                                   Round round) const {
  std::vector<DeliveryRecord> out;
  for (const DeliveryRecord& d : deliveries_) {
    if (d.receiver == receiver && d.recv_round == round) out.push_back(d);
  }
  return out;
}

std::string RunTrace::to_string() const {
  std::ostringstream os;
  os << "run: model=" << indulgence::to_string(model_) << " n=" << config_.n
     << " t=" << config_.t << " gst=" << gst_
     << " rounds=" << rounds_executed_
     << (terminated_ ? "" : " [ROUND CAP HIT]") << '\n';
  os << "proposals:";
  for (const auto& [pid, v] : proposals_) os << " p" << pid << "=" << v;
  os << '\n';
  if (!byzantine_.empty()) {
    os << "byzantine (budget " << byzantine_budget_ << "):";
    for (ProcessId pid : byzantine_) os << " p" << pid;
    os << '\n';
  }
  for (Round k = 1; k <= rounds_executed_; ++k) {
    os << "round " << k << ":\n";
    for (const CrashRecord& c : crashes_) {
      if (c.round == k) {
        os << "  CRASH p" << c.pid
           << (c.before_send ? " (before send)" : " (after send)") << '\n';
      }
    }
    for (const DeliveryRecord& d : deliveries_) {
      if (d.recv_round != k) continue;
      os << "  p" << d.sender << " -> p" << d.receiver;
      if (d.send_round != k) os << "  [delayed from round " << d.send_round << "]";
      if (d.payload) os << "  " << d.payload->describe();
      os << '\n';
    }
    for (const DecisionRecord& d : decisions_) {
      if (d.round == k) os << "  DECIDE p" << d.pid << " = " << d.value << '\n';
    }
    for (const auto& [pid, round] : halts_) {
      if (round == k) os << "  HALT p" << pid << '\n';
    }
  }
  if (!pending_.empty()) {
    os << "pending at end:";
    for (const PendingRecord& p : pending_) {
      os << " (p" << p.sender << "->p" << p.receiver << " sent@" << p.send_round
         << " due@" << p.deliver_round << ")";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace indulgence
