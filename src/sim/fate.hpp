// Per-message fates: what the adversary does to one (sender -> receiver)
// message of one round.

#pragma once

#include <string>

#include "common/types.hpp"

namespace indulgence {

enum class FateKind {
  Deliver,  ///< received in the round it was sent
  Delay,    ///< received in a later round (ES only)
  Lose,     ///< never received
};

struct Fate {
  FateKind kind = FateKind::Deliver;
  Round deliver_round = 0;  ///< meaningful only for Delay

  static Fate deliver() { return {FateKind::Deliver, 0}; }
  static Fate lose() { return {FateKind::Lose, 0}; }
  static Fate delay_to(Round r) { return {FateKind::Delay, r}; }

  friend bool operator==(const Fate&, const Fate&) = default;
};

inline std::string to_string(const Fate& f) {
  switch (f.kind) {
    case FateKind::Deliver: return "deliver";
    case FateKind::Lose: return "lose";
    case FateKind::Delay: return "delay->" + std::to_string(f.deliver_round);
  }
  return "?";
}

}  // namespace indulgence
