#include "sim/byzantine.hpp"

namespace indulgence {

const char* to_string(LieKind kind) {
  switch (kind) {
    case LieKind::Equivocate: return "equivocate";
    case LieKind::Lie: return "lie";
    case LieKind::Forge: return "forge";
    case LieKind::Replay: return "replay";
    case LieKind::Silence: return "silence";
  }
  return "?";
}

std::optional<LieKind> lie_kind_from(std::string_view word) {
  if (word == "equivocate") return LieKind::Equivocate;
  if (word == "lie") return LieKind::Lie;
  if (word == "forge") return LieKind::Forge;
  if (word == "replay") return LieKind::Replay;
  if (word == "silence") return LieKind::Silence;
  return std::nullopt;
}

std::string ByzantineEvent::describe() const {
  std::string out = to_string(kind);
  out += " p" + std::to_string(liar);
  if (kind == LieKind::Forge) out += " as p" + std::to_string(forged);
  if (kind == LieKind::Replay) out += " @" + std::to_string(replay_round);
  out += " -> ";
  if (target < 0) {
    out += '*';
  } else {
    out += 'p';
    out += std::to_string(target);
  }
  if (kind == LieKind::Lie || kind == LieKind::Equivocate || has_value) {
    out += " value=" + std::to_string(value);
  }
  return out;
}

}  // namespace indulgence
