#include "sim/kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace indulgence {

Kernel::Kernel(SystemConfig config, KernelOptions options,
               AlgorithmFactory factory, std::vector<Value> proposals,
               Adversary& adversary)
    : config_(config),
      options_(options),
      factory_(std::move(factory)),
      proposals_(std::move(proposals)),
      adversary_(adversary) {
  config_.validate();
  if (static_cast<int>(proposals_.size()) != config_.n) {
    throw std::invalid_argument("Kernel: need exactly n proposals");
  }
  for (Value v : proposals_) {
    if (v == kBottom) {
      throw std::invalid_argument("Kernel: kBottom is not a legal proposal");
    }
  }
}

RunTrace Kernel::run() {
  if (used_) throw std::logic_error("Kernel::run is single-shot");
  used_ = true;

  RunTrace trace(config_, options_.model, adversary_.gst());

  std::vector<std::unique_ptr<RoundAlgorithm>> procs(config_.n);
  std::vector<bool> alive(config_.n, true);
  std::vector<bool> halted(config_.n, false);
  std::vector<bool> decided(config_.n, false);
  for (ProcessId pid = 0; pid < config_.n; ++pid) {
    procs[pid] = factory_(pid, config_);
    procs[pid]->propose(proposals_[pid]);
    trace.record_proposal(pid, proposals_[pid]);
  }

  std::vector<PendingMessage> pending;
  Round executed = 0;
  bool all_decided = false;

  for (Round k = 1; k <= options_.max_rounds; ++k) {
    const RoundPlan plan = adversary_.plan_round(k);

    // --- crashes declared for this round ---------------------------------
    ProcessSet crashing_now;
    for (const CrashEvent& e : plan.crashes()) {
      if (e.pid < 0 || e.pid >= config_.n || !alive[e.pid]) continue;
      crashing_now.insert(e.pid);
      trace.record_crash({k, e.pid, e.before_send});
    }

    // --- send phase -------------------------------------------------------
    struct Outgoing {
      ProcessId sender;
      MessagePtr payload;
    };
    std::vector<Outgoing> outgoing;
    outgoing.reserve(config_.n);
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      if (!alive[pid]) continue;
      if (crashing_now.contains(pid) && plan.crashes_before_send(pid)) {
        continue;  // crashed before the send phase; no round-k message
      }
      MessagePtr payload;
      if (halted[pid]) {
        payload = std::make_shared<HaltedMessage>(*procs[pid]->decision());
      } else {
        payload = procs[pid]->message_for_round(k);
        if (!payload) {
          throw std::logic_error(procs[pid]->name() +
                                 ": message_for_round returned null");
        }
      }
      trace.record_send({k, pid, halted[pid]});
      outgoing.push_back({pid, std::move(payload)});
    }

    // --- fate resolution ----------------------------------------------------
    // In-round deliveries of round-k messages, plus queueing of delays.
    std::vector<std::vector<Envelope>> inbox(config_.n);
    for (const Outgoing& out : outgoing) {
      for (ProcessId receiver = 0; receiver < config_.n; ++receiver) {
        Envelope env{out.sender, k, out.payload};
        if (receiver == out.sender) {
          inbox[receiver].push_back(std::move(env));  // self-delivery
          continue;
        }
        const Fate fate = plan.fate(out.sender, receiver);
        switch (fate.kind) {
          case FateKind::Deliver:
            inbox[receiver].push_back(std::move(env));
            break;
          case FateKind::Lose:
            break;
          case FateKind::Delay:
            if (options_.model == Model::SCS) {
              throw std::logic_error("Kernel: Delay fate in SCS model");
            }
            if (fate.deliver_round <= k) {
              throw std::logic_error("Kernel: delay into the past");
            }
            pending.push_back({fate.deliver_round, receiver, std::move(env)});
            break;
        }
      }
    }

    // Delayed messages falling due this round.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->deliver_round == k) {
        inbox[it->receiver].push_back(std::move(it->envelope));
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // --- mark this round's crashers dead (they do not receive) -----------
    for (ProcessId pid : crashing_now) alive[pid] = false;
    // Drop pending messages addressed to dead receivers.
    std::erase_if(pending, [&](const PendingMessage& p) {
      return !alive[p.receiver];
    });

    // --- receive phase ----------------------------------------------------
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      if (!alive[pid]) continue;
      Delivery& delivery = inbox[pid];
      // Deterministic presentation order: by send round, then sender.
      std::sort(delivery.begin(), delivery.end(),
                [](const Envelope& a, const Envelope& b) {
                  return a.send_round != b.send_round
                             ? a.send_round < b.send_round
                             : a.sender < b.sender;
                });
      for (const Envelope& env : delivery) {
        trace.record_delivery({k, pid, env.sender, env.send_round, env.payload});
      }
      if (halted[pid]) continue;  // dummies only; the algorithm has returned

      procs[pid]->on_round(k, delivery);

      if (!decided[pid]) {
        if (auto d = procs[pid]->decision()) {
          decided[pid] = true;
          trace.record_decision({k, pid, *d});
        }
      }
      if (procs[pid]->halted()) {
        if (!decided[pid]) {
          throw std::logic_error(procs[pid]->name() +
                                 ": halted without deciding");
        }
        halted[pid] = true;
        trace.record_halt(pid, k);
      }
    }

    executed = k;

    // --- stop condition -----------------------------------------------------
    all_decided = true;
    for (ProcessId pid = 0; pid < config_.n; ++pid) {
      if (alive[pid] && !decided[pid]) {
        all_decided = false;
        break;
      }
    }
    if (all_decided && options_.stop_on_global_decision) break;
  }

  for (const PendingMessage& p : pending) {
    trace.record_pending(
        {p.envelope.sender, p.receiver, p.envelope.send_round, p.deliver_round});
  }
  trace.set_rounds_executed(executed);
  trace.set_terminated(all_decided);
  algorithms_ = std::move(procs);  // keep instances inspectable post-run
  return trace;
}

RunTrace run_schedule(SystemConfig config, KernelOptions options,
                      const AlgorithmFactory& factory,
                      const std::vector<Value>& proposals,
                      const RunSchedule& schedule) {
  ScheduleAdversary adversary(schedule);
  Kernel kernel(config, options, factory, proposals, adversary);
  return kernel.run();
}

}  // namespace indulgence
