#include "sim/kernel.hpp"

#include <algorithm>
#include <stdexcept>

namespace indulgence {

namespace {

void validate_run_inputs(const SystemConfig& config,
                         const std::vector<Value>& proposals) {
  config.validate();
  if (static_cast<int>(proposals.size()) != config.n) {
    throw std::invalid_argument("Kernel: need exactly n proposals");
  }
  for (Value v : proposals) {
    if (v == kBottom) {
      throw std::invalid_argument("Kernel: kBottom is not a legal proposal");
    }
  }
}

}  // namespace

void execute_run(const SystemConfig& config, const KernelOptions& options,
                 const AlgorithmFactory& factory,
                 const std::vector<Value>& proposals, Adversary& adversary,
                 KernelScratch& scratch, RunTrace& trace) {
  validate_run_inputs(config, proposals);
  trace.reset(config, options.model, adversary.gst());

  const std::size_t n = static_cast<std::size_t>(config.n);
  scratch.algorithms.clear();
  scratch.algorithms.resize(n);
  scratch.alive.assign(n, 1);
  scratch.halted.assign(n, 0);
  scratch.decided.assign(n, 0);
  scratch.pending.clear();
  scratch.inboxes.resize(n);
  for (Delivery& inbox : scratch.inboxes) inbox.clear();

  // Byzantine mode: stamp the budget and keep per-round payload history so
  // Replay lies can resend stale rounds (sim/byzantine.hpp).
  const int byz_budget = adversary.byzantine_budget();
  if (byz_budget > 0) trace.set_byzantine_budget(byz_budget);
  scratch.history.resize(n);
  for (auto& h : scratch.history) h.clear();

  auto& procs = scratch.algorithms;
  auto& alive = scratch.alive;
  auto& halted = scratch.halted;
  auto& decided = scratch.decided;
  auto& pending = scratch.pending;

  for (ProcessId pid = 0; pid < config.n; ++pid) {
    procs[pid] = factory(pid, config);
    procs[pid]->propose(proposals[pid]);
    trace.record_proposal(pid, proposals[pid]);
  }

  Round executed = 0;
  bool all_decided = false;

  for (Round k = 1; k <= options.max_rounds; ++k) {
    const RoundPlan plan = adversary.plan_round(k);

    // --- crashes declared for this round ---------------------------------
    ProcessSet crashing_now;
    for (const CrashEvent& e : plan.crashes()) {
      if (e.pid < 0 || e.pid >= config.n || !alive[e.pid]) continue;
      crashing_now.insert(e.pid);
      trace.record_crash({k, e.pid, e.before_send});
    }

    // --- send phase -------------------------------------------------------
    auto& outgoing = scratch.outgoing;
    outgoing.clear();
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      if (!alive[pid]) continue;
      if (crashing_now.contains(pid) && plan.crashes_before_send(pid)) {
        continue;  // crashed before the send phase; no round-k message
      }
      MessagePtr payload;
      if (halted[pid]) {
        payload = std::make_shared<HaltedMessage>(*procs[pid]->decision());
      } else {
        payload = procs[pid]->message_for_round(k);
        if (!payload) {
          throw std::logic_error(procs[pid]->name() +
                                 ": message_for_round returned null");
        }
      }
      trace.record_send({k, pid, halted[pid] != 0});
      outgoing.push_back({pid, std::move(payload)});
    }

    // --- fate resolution ----------------------------------------------------
    // In-round deliveries of round-k messages, plus queueing of delays.
    // Byzantine senders get their copies rewritten first (sim/byzantine.hpp):
    // the fate of every copy — forged ones included — is still keyed by the
    // EMITTING process, so loss/delay plans compose with lies.
    const std::vector<ByzantineEvent>& lies = plan.byzantine();
    auto& inbox = scratch.inboxes;
    auto route = [&](ProcessId receiver, Envelope env) {
      const Fate fate = plan.fate(env.emitter(), receiver);
      switch (fate.kind) {
        case FateKind::Deliver:
          inbox[receiver].push_back(std::move(env));
          break;
        case FateKind::Lose:
          break;
        case FateKind::Delay:
          if (options.model == Model::SCS) {
            throw std::logic_error("Kernel: Delay fate in SCS model");
          }
          if (fate.deliver_round <= k) {
            throw std::logic_error("Kernel: delay into the past");
          }
          pending.push_back({fate.deliver_round, receiver, std::move(env)});
          break;
      }
    };
    for (const KernelScratch::Outgoing& out : outgoing) {
      if (byz_budget > 0) {
        auto& sent = scratch.history[out.sender];
        sent.resize(static_cast<std::size_t>(k));
        sent[static_cast<std::size_t>(k) - 1] = out.payload;
      }
      bool is_liar = false;
      for (const ByzantineEvent& e : lies) {
        if (e.liar == out.sender) is_liar = true;
      }
      if (is_liar) trace.record_byzantine(out.sender);
      for (ProcessId receiver = 0; receiver < config.n; ++receiver) {
        if (receiver == out.sender) {
          // Self-delivery: unconditional, and never affected by the
          // sender's own lies — a process knows its own state.
          inbox[receiver].push_back(Envelope{out.sender, k, out.payload});
          continue;
        }
        MessagePtr payload = out.payload;
        bool silenced = false;
        if (is_liar) {
          for (const ByzantineEvent& e : lies) {
            if (e.liar != out.sender || !e.applies_to(receiver)) continue;
            switch (e.kind) {
              case LieKind::Silence:
                silenced = true;
                break;
              case LieKind::Lie:
              case LieKind::Equivocate:
                if (MessagePtr m = payload->mutated(e.value)) {
                  payload = std::move(m);
                }
                break;
              case LieKind::Replay: {
                // Resend the stale round's payload stamped as fresh; the
                // honest copy stands in when no such payload exists.
                const auto& sent = scratch.history[out.sender];
                const auto idx = static_cast<std::size_t>(e.replay_round) - 1;
                if (e.replay_round >= 1 && idx < sent.size() && sent[idx]) {
                  payload = sent[idx];
                }
                break;
              }
              case LieKind::Forge: {
                // An EXTRA copy claiming the victim's id; origin stays the
                // liar so the trace remains attributable.
                if (e.forged < 0 || e.forged >= config.n ||
                    e.forged == out.sender) {
                  break;
                }
                MessagePtr forged_payload = out.payload;
                if (e.has_value) {
                  if (MessagePtr m = forged_payload->mutated(e.value)) {
                    forged_payload = std::move(m);
                  }
                }
                route(receiver, Envelope{e.forged, k,
                                         std::move(forged_payload),
                                         out.sender});
                break;
              }
            }
          }
        }
        if (silenced) continue;
        route(receiver, Envelope{out.sender, k, std::move(payload)});
      }
    }

    // Delayed messages falling due this round.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->deliver_round == k) {
        inbox[it->receiver].push_back(std::move(it->envelope));
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    // --- mark this round's crashers dead (they do not receive) -----------
    for (ProcessId pid : crashing_now) alive[pid] = 0;
    // Drop pending messages addressed to dead receivers.
    std::erase_if(pending, [&](const KernelScratch::PendingMessage& p) {
      return !alive[p.receiver];
    });

    // --- receive phase ----------------------------------------------------
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      Delivery& delivery = inbox[pid];
      if (!alive[pid]) {
        delivery.clear();
        continue;
      }
      // Deterministic presentation order: by send round, then sender (a
      // stable sort — a forged copy shares its victim's key with the real
      // one, and insertion order must not be scrambled between runs).
      std::stable_sort(delivery.begin(), delivery.end(),
                       [](const Envelope& a, const Envelope& b) {
                         return a.send_round != b.send_round
                                    ? a.send_round < b.send_round
                                    : a.sender < b.sender;
                       });
      for (const Envelope& env : delivery) {
        trace.record_delivery(
            {k, pid, env.sender, env.send_round, env.payload, env.origin});
      }
      if (halted[pid]) {
        delivery.clear();
        continue;  // dummies only; the algorithm has returned
      }

      procs[pid]->on_round(k, delivery);

      if (!decided[pid]) {
        if (auto d = procs[pid]->decision()) {
          decided[pid] = 1;
          trace.record_decision({k, pid, *d});
        }
      }
      if (procs[pid]->halted()) {
        if (!decided[pid]) {
          throw std::logic_error(procs[pid]->name() +
                                 ": halted without deciding");
        }
        halted[pid] = 1;
        trace.record_halt(pid, k);
      }
      delivery.clear();
    }

    executed = k;

    // --- stop condition -----------------------------------------------------
    all_decided = true;
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      if (alive[pid] && !decided[pid]) {
        all_decided = false;
        break;
      }
    }
    if (all_decided && options.stop_on_global_decision) break;
  }

  for (const KernelScratch::PendingMessage& p : pending) {
    trace.record_pending(
        {p.envelope.sender, p.receiver, p.envelope.send_round, p.deliver_round});
  }
  trace.set_rounds_executed(executed);
  trace.set_terminated(all_decided);
}

Kernel::Kernel(SystemConfig config, KernelOptions options,
               AlgorithmFactory factory, std::vector<Value> proposals,
               Adversary& adversary)
    : config_(config),
      options_(options),
      factory_(std::move(factory)),
      proposals_(std::move(proposals)),
      adversary_(adversary) {
  validate_run_inputs(config_, proposals_);
}

RunTrace Kernel::run() {
  if (used_) throw std::logic_error("Kernel::run is single-shot");
  used_ = true;
  RunTrace trace;
  execute_run(config_, options_, factory_, proposals_, adversary_, scratch_,
              trace);
  return trace;
}

RunTrace run_schedule(SystemConfig config, KernelOptions options,
                      const AlgorithmFactory& factory,
                      const std::vector<Value>& proposals,
                      const RunSchedule& schedule) {
  ScheduleAdversary adversary(schedule);
  Kernel kernel(config, options, factory, proposals, adversary);
  return kernel.run();
}

}  // namespace indulgence
