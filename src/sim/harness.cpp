#include "sim/harness.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace indulgence {

std::string RunResult::summary() const {
  std::ostringstream os;
  os << "decision_round="
     << (global_decision_round ? std::to_string(*global_decision_round) : "-")
     << " agreement=" << (agreement ? "ok" : "VIOLATED")
     << " validity=" << (validity ? "ok" : "VIOLATED")
     << " termination=" << (termination ? "ok" : "FAILED")
     << " model=" << (validation.ok() ? "valid" : "INVALID");
  return os.str();
}

RunResult run_and_check(SystemConfig config, KernelOptions options,
                        const AlgorithmFactory& factory,
                        const std::vector<Value>& proposals,
                        Adversary& adversary,
                        AlgorithmInstances* algorithms_out) {
  Kernel kernel(config, options, factory, proposals, adversary);
  RunResult result{kernel.run(), {}, std::nullopt, false, false, false};
  if (algorithms_out) *algorithms_out = kernel.take_algorithms();
  result.validation = validate_trace(result.trace);
  result.global_decision_round = result.trace.global_decision_round();
  result.agreement = result.trace.agreement_ok();
  result.validity = result.trace.validity_ok();
  result.termination = result.trace.terminated() &&
                       result.trace.all_correct_decided();
  return result;
}

RunResult run_and_check(SystemConfig config, KernelOptions options,
                        const AlgorithmFactory& factory,
                        const std::vector<Value>& proposals,
                        const RunSchedule& schedule,
                        AlgorithmInstances* algorithms_out) {
  ScheduleRefAdversary adversary(schedule);
  return run_and_check(config, options, factory, proposals, adversary,
                       algorithms_out);
}

RunContext::RunContext(SystemConfig config, KernelOptions options)
    : config_(config), options_(options) {
  config_.validate();
}

const RunResult& RunContext::run(const AlgorithmFactory& factory,
                                 const std::vector<Value>& proposals,
                                 Adversary& adversary) {
  execute_run(config_, options_, factory, proposals, adversary, scratch_,
              result_.trace);
  result_.validation = validate_trace(result_.trace);
  result_.global_decision_round = result_.trace.global_decision_round();
  result_.agreement = result_.trace.agreement_ok();
  result_.validity = result_.trace.validity_ok();
  result_.termination =
      result_.trace.terminated() && result_.trace.all_correct_decided();
  return result_;
}

const RunResult& RunContext::run(const AlgorithmFactory& factory,
                                 const std::vector<Value>& proposals,
                                 const RunSchedule& schedule) {
  ScheduleRefAdversary adversary(schedule);
  return run(factory, proposals, adversary);
}

std::vector<Value> distinct_proposals(int n) {
  std::vector<Value> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

std::vector<Value> uniform_proposals(int n, Value v) {
  return std::vector<Value>(n, v);
}

RunSchedule failure_free_schedule(SystemConfig config) {
  return ScheduleBuilder(config).build();
}

RunSchedule staggered_chain_schedule(SystemConfig config, int crashes) {
  if (crashes > config.t) {
    throw std::invalid_argument("staggered_chain_schedule: crashes > t");
  }
  ScheduleBuilder b(config);
  for (int k = 1; k <= crashes; ++k) {
    const ProcessId victim = k - 1;
    b.crash(victim, k);
    // Round-k message survives only to process k; lost to everyone else.
    ProcessSet lost = ProcessSet::all(config.n);
    lost.erase(victim);
    lost.erase(k % config.n);
    b.losing_to(victim, k, lost);
  }
  return b.build();
}

RunSchedule crash_burst_schedule(SystemConfig config, int f, Round round,
                                 bool before_send) {
  if (f > config.t) throw std::invalid_argument("crash_burst_schedule: f > t");
  ScheduleBuilder b(config);
  for (ProcessId pid = 0; pid < f; ++pid) {
    b.crash(pid, round, before_send);
    if (!before_send) {
      // Half the recipients lose the message: exercises partial delivery.
      ProcessSet lost;
      for (ProcessId r = 0; r < config.n; r += 2) {
        if (r != pid) lost.insert(r);
      }
      b.losing_to(pid, round, lost);
    }
  }
  return b.build();
}

RunSchedule coordinator_assassin_schedule(SystemConfig config, int crashes) {
  if (crashes > config.t) {
    throw std::invalid_argument("coordinator_assassin_schedule: crashes > t");
  }
  ScheduleBuilder b(config);
  for (int a = 0; a < crashes; ++a) {
    // Attempt a occupies rounds 2a+1 and 2a+2 in the 2-round-attempt
    // algorithms; killing its coordinator before it can broadcast wastes
    // the whole attempt.
    b.crash(/*pid=*/a % config.n, /*round=*/2 * a + 1, /*before_send=*/true);
  }
  return b.build();
}

RunSchedule async_prefix_schedule(SystemConfig config, Round gst,
                                  const ProcessSet& laggards, int f,
                                  Round horizon) {
  if (laggards.size() > config.t) {
    throw std::invalid_argument("async_prefix_schedule: |laggards| > t");
  }
  if (f > config.t) {
    throw std::invalid_argument("async_prefix_schedule: f > t");
  }
  if (f + static_cast<int>(laggards.size()) > config.n) {
    throw std::invalid_argument(
        "async_prefix_schedule: f + |laggards| > n (crashes skip laggards)");
  }
  if (horizon > 0 && f > 0 && gst + f - 1 > horizon) {
    throw std::invalid_argument(
        "async_prefix_schedule: last crash round gst + f - 1 exceeds horizon");
  }
  ScheduleBuilder b(config);
  b.gst(gst);
  for (Round k = 1; k < gst; ++k) {
    for (ProcessId lag : laggards) {
      for (ProcessId r = 0; r < config.n; ++r) {
        if (r != lag) b.delay(lag, r, k, std::max(k + 1, gst));
      }
    }
  }
  // Staggered crashes after GST (avoid crashing the laggards themselves so
  // the asynchronous prefix stays distinct from the crash pattern).
  int injected = 0;
  for (ProcessId pid = 0; pid < config.n && injected < f; ++pid) {
    if (laggards.contains(pid)) continue;
    b.crash(pid, gst + injected, /*before_send=*/true);
    ++injected;
  }
  return b.build();
}

std::vector<RunSchedule> hostile_sync_schedules(SystemConfig config,
                                                int crashes) {
  std::vector<RunSchedule> out;
  out.push_back(failure_free_schedule(config));
  if (crashes == 0) return out;

  out.push_back(staggered_chain_schedule(config, crashes));
  out.push_back(crash_burst_schedule(config, crashes, 1, true));
  out.push_back(crash_burst_schedule(config, crashes, 1, false));
  out.push_back(crash_burst_schedule(config, crashes, 2, false));
  out.push_back(coordinator_assassin_schedule(config, crashes));

  // Reverse chain: crashes in rounds crashes..1 victim order reversed, each
  // delivering to nobody (before-send crash at increasing rounds).
  {
    ScheduleBuilder b(config);
    for (int k = 1; k <= crashes; ++k) {
      b.crash(crashes - k, k, /*before_send=*/true);
    }
    out.push_back(b.build());
  }

  // Chain where each crasher's message reaches everyone EXCEPT one process:
  // produces maximal asymmetric suspicion knowledge.
  {
    ScheduleBuilder b(config);
    for (int k = 1; k <= crashes; ++k) {
      const ProcessId victim = k - 1;
      b.crash(victim, k);
      b.lose(victim, (victim + 1) % config.n, k);
    }
    out.push_back(b.build());
  }

  // Late burst: all crashes in round `crashes` (as late as a serial run
  // would allow them all).
  {
    ScheduleBuilder b(config);
    for (ProcessId pid = 0; pid < crashes; ++pid) {
      b.crash(pid, crashes, pid % 2 == 0);
    }
    out.push_back(b.build());
  }
  return out;
}

namespace {

/// Partial result of the hostile-schedule sweep: the worst round is a max,
/// so any chunk-ordered merge reproduces the sequential answer.
struct WorstRound {
  Round worst = 0;
  void merge(const WorstRound& other) { worst = std::max(worst, other.worst); }
};

}  // namespace

Round worst_case_sync_decision_round(
    SystemConfig config, const AlgorithmFactory& factory,
    const std::vector<std::vector<Value>>& proposal_vectors, int crashes,
    Round max_rounds, CampaignOptions campaign) {
  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds;

  const std::vector<RunSchedule> schedules =
      hostile_sync_schedules(config, crashes);
  const long total =
      static_cast<long>(schedules.size() * proposal_vectors.size());
  const long per_proposal = static_cast<long>(proposal_vectors.size());

  // One (schedule, proposal) cell per work item; chunked per schedule.
  const WorstRound result = parallel_reduce<WorstRound>(
      total, campaign.resolved_chunk(per_proposal), campaign.resolved_jobs(),
      WorstRound{}, [&](long, long begin, long end) {
        WorstRound partial;
        RunContext ctx(config, options);
        for (long i = begin; i < end; ++i) {
          const RunSchedule& schedule =
              schedules[static_cast<std::size_t>(i / per_proposal)];
          const std::vector<Value>& proposals =
              proposal_vectors[static_cast<std::size_t>(i % per_proposal)];
          const RunResult& r = ctx.run(factory, proposals, schedule);
          if (!r.ok()) {
            throw std::runtime_error(
                "worst_case_sync_decision_round: run failed: " + r.summary() +
                "\n" + r.validation.to_string() + "\n" + r.trace.to_string());
          }
          partial.worst = std::max(partial.worst, *r.global_decision_round);
        }
        return partial;
      });
  return result.worst;
}

}  // namespace indulgence
