// Explicit run schedules: a full description of the adversary's choices for
// a run — who crashes when, and the fate of every message.
//
// Schedules serve two purposes:
//   * hand-crafted scenarios (the Fig. 1 lower-bound constructions, worst-
//     case staggered-crash runs, partition scenarios in the examples), built
//     through ScheduleBuilder;
//   * the output format of generated adversaries, so that any run — random
//     or searched — can be replayed and independently validated.

#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"
#include "sim/byzantine.hpp"
#include "sim/fate.hpp"

namespace indulgence {

/// A crash of one process in one round.  `before_send == true` means the
/// process crashes before the send phase (none of its round messages exist);
/// otherwise it crashes after sending, and the per-message fates decide what
/// arrives.  In both cases the process does not execute the receive phase of
/// its crash round (it "does not complete the round", Sect. 1.2).
struct CrashEvent {
  ProcessId pid = -1;
  bool before_send = false;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// The adversary's choices for one round: crashes plus message fates.
/// Fates default to Deliver; only overrides are stored.
class RoundPlan {
 public:
  void add_crash(CrashEvent e) { crashes_.push_back(e); }

  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  bool crashes_process(ProcessId pid) const;

  /// True iff pid crashes before the send phase this round.
  bool crashes_before_send(ProcessId pid) const;

  void set_fate(ProcessId sender, ProcessId receiver, Fate fate);

  Fate fate(ProcessId sender, ProcessId receiver) const;

  /// All explicitly overridden fates, for validation and printing.
  struct Override {
    ProcessId sender = -1;
    ProcessId receiver = -1;
    Fate fate;

    friend bool operator==(const Override&, const Override&) = default;
  };
  const std::vector<Override>& overrides() const { return overrides_; }

  /// Byzantine actions this round (sim/byzantine.hpp), applied in order
  /// during the kernel's fate resolution of the liar's outgoing copies.
  void add_byzantine(ByzantineEvent e) { byzantine_.push_back(e); }
  const std::vector<ByzantineEvent>& byzantine() const { return byzantine_; }

  /// True iff pid performs any Byzantine action this round.
  bool lies(ProcessId pid) const;

  friend bool operator==(const RoundPlan&, const RoundPlan&) = default;

 private:
  std::vector<CrashEvent> crashes_;
  std::vector<Override> overrides_;
  std::vector<ByzantineEvent> byzantine_;
};

/// A complete schedule: per-round plans plus the claimed GST round.
/// Rounds without an explicit plan default to "no crash, deliver all".
class RunSchedule {
 public:
  explicit RunSchedule(SystemConfig config) : config_(config) {
    config_.validate();
  }

  const SystemConfig& config() const { return config_; }

  /// GST: the round K from which the eventual-synchrony guarantees hold
  /// (Sect. 1.2).  K == 1 means the run is synchronous.
  Round gst() const { return gst_; }
  void set_gst(Round k) { gst_ = k; }

  RoundPlan& plan(Round k) { return plans_[k]; }

  /// Read access; returns the default (empty) plan for untouched rounds.
  const RoundPlan& plan(Round k) const;

  /// Largest round with an explicit plan (0 when none).
  Round last_planned_round() const;

  /// Number of rounds with a non-empty plan — the "size" of a repro.
  int planned_rounds() const;

  /// Set of processes that crash anywhere in the schedule.
  ProcessSet crashed_processes() const;

  /// Set of processes with a Byzantine action anywhere in the schedule.
  ProcessSet byzantine_processes() const;

  /// Declared liar budget b (validator contract: 3b < n).  Defaults to the
  /// number of distinct liars in the plans, so hand-built schedules need no
  /// explicit declaration; serialized repros carry it explicitly.
  int byzantine_budget() const;
  void set_byzantine_budget(int b) { byzantine_budget_ = b; }

  /// Structural equality (config, GST, per-round plans); lets determinism
  /// tests assert that campaigns at different job counts find the SAME
  /// worst schedule, not merely the same worst round.
  friend bool operator==(const RunSchedule& a, const RunSchedule& b) {
    return a.config_ == b.config_ && a.gst_ == b.gst_ &&
           a.byzantine_budget() == b.byzantine_budget() &&
           a.plans_ == b.plans_;
  }

 private:
  SystemConfig config_;
  Round gst_ = 1;
  int byzantine_budget_ = 0;  ///< 0 = derive from the plans
  std::map<Round, RoundPlan> plans_;
  static const RoundPlan kEmptyPlan;
};

/// Fluent construction of schedules for hand-crafted scenarios.
///
///   ScheduleBuilder b({.n = 5, .t = 2});
///   b.crash(0, 1).losing_to(0, 1, {2, 3});       // p0 crashes in round 1,
///                                                // its message to p2, p3 lost
///   b.delay(1, 4, /*send_round=*/2, /*deliver_round=*/5);
///   b.gst(3);
///   RunSchedule s = b.build();
class ScheduleBuilder {
 public:
  explicit ScheduleBuilder(SystemConfig config) : schedule_(config) {}

  /// p crashes in `round`, after its send phase by default.
  ScheduleBuilder& crash(ProcessId pid, Round round, bool before_send = false);

  /// The round-`round` message sender -> receiver is lost.
  ScheduleBuilder& lose(ProcessId sender, ProcessId receiver, Round round);

  /// The round-`round` messages from sender to every member of `receivers`
  /// are lost.
  ScheduleBuilder& losing_to(ProcessId sender, Round round,
                             const ProcessSet& receivers);

  /// The round-`send_round` message sender -> receiver arrives in
  /// `deliver_round` (> send_round).
  ScheduleBuilder& delay(ProcessId sender, ProcessId receiver,
                         Round send_round, Round deliver_round);

  /// Delay sender's round-`send_round` message to every member of
  /// `receivers` until `deliver_round`.
  ScheduleBuilder& delaying_to(ProcessId sender, Round send_round,
                               const ProcessSet& receivers,
                               Round deliver_round);

  /// Declare the eventual-synchrony round K.
  ScheduleBuilder& gst(Round k);

  /// Byzantine actions (sim/byzantine.hpp).  `target == -1` hits every
  /// receiver; self-delivery is never affected.
  ScheduleBuilder& lie(ProcessId liar, Round round, Value value,
                       ProcessId target = -1);
  ScheduleBuilder& equivocate(ProcessId liar, Round round, Value value,
                              ProcessId target);
  ScheduleBuilder& forge(ProcessId liar, ProcessId victim, Round round,
                         ProcessId target = -1,
                         std::optional<Value> value = std::nullopt);
  ScheduleBuilder& replay(ProcessId liar, Round round, Round stale_round,
                          ProcessId target = -1);
  ScheduleBuilder& silence(ProcessId liar, Round round,
                           ProcessId target = -1);

  /// Declare the liar budget (otherwise derived from the events).
  ScheduleBuilder& byzantine_budget(int b);

  RunSchedule build() { return schedule_; }

 private:
  RunSchedule schedule_;
};

}  // namespace indulgence
