// Message payloads and envelopes for the round-based simulator.
//
// Algorithms define their own payload types derived from Message; the
// kernel transports them opaquely as shared immutable values (a delivered
// payload may be referenced by many receivers' envelopes, so payloads are
// const after construction).
//
// Per footnote 1 of the paper, a process is supposed to send a message to
// all processes in every round; when an algorithm instance has returned
// (halted), the kernel substitutes a HaltedMessage carrying the process'
// decision, which algorithms treat as a DECIDE message.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace indulgence {

/// Base class for all algorithm message payloads.
class Message {
 public:
  virtual ~Message() = default;

  /// Human-readable rendering for traces and test failure output.
  virtual std::string describe() const = 0;

  /// Byzantine mutation surface (sim/byzantine.hpp): a copy of this payload
  /// with its primary value field replaced by `v`, or nullptr when the type
  /// has no lie-mutable field.  Only the plain value may change — signer
  /// ids, round stamps, certificates, and set-valued evidence are out of
  /// the injection layer's reach (they model signed content).
  virtual std::shared_ptr<const Message> mutated(Value v) const {
    (void)v;
    return nullptr;
  }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Kernel-substituted dummy sent on behalf of a halted (returned) process.
/// Carries the decision the process halted with, so it doubles as a DECIDE.
class HaltedMessage final : public Message {
 public:
  explicit HaltedMessage(Value decision) : decision_(decision) {}

  Value decision() const { return decision_; }

  std::string describe() const override {
    return "HALTED(decided=" + std::to_string(decision_) + ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<HaltedMessage>(v);
  }

 private:
  Value decision_;
};

/// A payload in flight or delivered: who sent it and in which round.
/// `origin` is the process that ACTUALLY emitted the copy: -1 (the default)
/// means origin == sender; a Byzantine forger sets sender to its victim and
/// origin to itself, so traces stay attributable to the real liar.
struct Envelope {
  ProcessId sender = -1;
  Round send_round = 0;
  MessagePtr payload;
  ProcessId origin = -1;

  /// The emitting process (the liar for forged copies).
  ProcessId emitter() const { return origin < 0 ? sender : origin; }

  /// Downcast helper: nullptr when the payload is not a T.
  template <typename T>
  const T* as() const {
    return dynamic_cast<const T*>(payload.get());
  }
};

/// The set of envelopes a process receives in one round's receive phase.
using Delivery = std::vector<Envelope>;

/// Returns the senders of the *current-round* messages in a delivery, i.e.
/// the processes NOT suspected this round (paper Sect. 1.2: p_i suspects p_j
/// in round k iff p_i does not receive p_j's round-k message in round k).
std::vector<ProcessId> current_round_senders(const Delivery& delivery,
                                             Round round);

}  // namespace indulgence
