// Adversaries: the source of crashes, message losses, and delays in a run.
//
// The kernel pulls a RoundPlan from the adversary at the start of each round
// and executes it mechanically.  Three families are provided:
//
//   * ScheduleAdversary  — replays an explicit RunSchedule (hand-crafted
//     scenarios, lower-bound constructions, explorer-enumerated runs);
//   * RandomEsAdversary  — seeded random ES adversary that respects the
//     model's constraints *by construction*: before its GST round it may
//     delay messages from a bounded "laggard" set and inject crashes, after
//     GST it only exercises the synchronous crash semantics;
//   * RandomScsAdversary — seeded random SCS adversary (crashes plus
//     crash-round message loss, no delays).
//
// Every generated plan is also recordable as a RunSchedule so runs replay
// bit-for-bit.

#pragma once

#include <optional>
#include <vector>

#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/schedule.hpp"

namespace indulgence {

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// The eventual-synchrony round K of the run being generated (K = 1 means
  /// the run is synchronous).  Must be stable across the run.
  virtual Round gst() const = 0;

  /// The adversary's choices for round k.  Called exactly once per round,
  /// in increasing round order.
  virtual RoundPlan plan_round(Round k) = 0;

  /// Declared liar budget b for the run (sim/byzantine.hpp); 0 means the
  /// run is crash-only.  The kernel stamps it into the trace, tracks sent
  /// payloads for Replay lies when it is positive, and the validator holds
  /// the declared liar set to |liars| <= b with 3b < n.
  virtual int byzantine_budget() const { return 0; }
};

/// Replays an explicit schedule.
class ScheduleAdversary final : public Adversary {
 public:
  explicit ScheduleAdversary(RunSchedule schedule)
      : schedule_(std::move(schedule)) {}

  Round gst() const override { return schedule_.gst(); }
  RoundPlan plan_round(Round k) override { return schedule_.plan(k); }
  int byzantine_budget() const override {
    return schedule_.byzantine_budget();
  }

  const RunSchedule& schedule() const { return schedule_; }

 private:
  RunSchedule schedule_;
};

/// Replays a borrowed schedule without copying it.  The sweep hot path runs
/// millions of schedules; ScheduleAdversary's by-value copy of the plan map
/// is measurable there.  The schedule must outlive the adversary.
class ScheduleRefAdversary final : public Adversary {
 public:
  explicit ScheduleRefAdversary(const RunSchedule& schedule)
      : schedule_(&schedule) {}

  Round gst() const override { return schedule_->gst(); }
  RoundPlan plan_round(Round k) override { return schedule_->plan(k); }
  int byzantine_budget() const override {
    return schedule_->byzantine_budget();
  }

 private:
  const RunSchedule* schedule_;
};

/// Tuning knobs for the random ES adversary.
struct RandomEsOptions {
  Round gst = 1;              ///< eventual synchrony from this round on
  int max_crashes = -1;       ///< -1 means "use config.t"
  double crash_prob = 0.15;   ///< per-round probability of injecting a crash
  double before_send_prob = 0.5;  ///< a crash happens before the send phase
  double laggard_prob = 0.5;  ///< pre-GST: probability a laggard slot is used
  double delay_prob = 0.6;    ///< pre-GST: probability a laggard's message to
                              ///< a given receiver is delayed
  int max_delay = 4;          ///< delayed messages arrive within this many
                              ///< rounds of being sent
  double crash_loss_prob = 0.5;  ///< a crash-round message is lost
  bool allow_crash_delay = true; ///< crash-round messages may be delayed
                                 ///< (footnotes 2/5) instead of lost
};

/// Random ES adversary.  Invariants maintained by construction:
///   * at most max_crashes processes ever crash;
///   * in every round, the processes failing to deliver in-round to anyone
///     (earlier crashes + this round's crashers + laggards) number <= t,
///     so every receiver gets >= n - t current-round messages (t-resilience);
///   * from round gst() on, no message from a non-crashing sender is delayed
///     or lost (eventual synchrony);
///   * no correct->correct message is ever lost (reliable channels) — only
///     crash-round messages can be lost.
class RandomEsAdversary final : public Adversary {
 public:
  RandomEsAdversary(SystemConfig config, RandomEsOptions options,
                    std::uint64_t seed);

  Round gst() const override { return options_.gst; }
  RoundPlan plan_round(Round k) override;

  /// Processes crashed so far (grows as rounds are planned).
  const ProcessSet& crashed() const { return crashed_; }

 private:
  SystemConfig config_;
  RandomEsOptions options_;
  Rng rng_;
  ProcessSet crashed_;  // all processes crashed in planned rounds
  int crash_budget_;
};

/// Random SCS adversary: only crashes and crash-round loss.
struct RandomScsOptions {
  int max_crashes = -1;       ///< -1 means "use config.t"
  double crash_prob = 0.2;
  double before_send_prob = 0.3;
  double crash_loss_prob = 0.5;
};

class RandomScsAdversary final : public Adversary {
 public:
  RandomScsAdversary(SystemConfig config, RandomScsOptions options,
                     std::uint64_t seed);

  Round gst() const override { return 1; }
  RoundPlan plan_round(Round k) override;

 private:
  SystemConfig config_;
  RandomScsOptions options_;
  Rng rng_;
  ProcessSet crashed_;
  int crash_budget_;
};

}  // namespace indulgence
