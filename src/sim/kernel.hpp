// The round-based simulation kernel.
//
// Executes one run of a round-based algorithm (paper Sect. 1.2) under an
// adversary:
//
//   round k:  1. apply the adversary's crash decisions for round k;
//             2. send phase — every live process (and, via kernel-made
//                HaltedMessage dummies, every halted one) produces its
//                round-k broadcast; the adversary assigns each copy a fate
//                (deliver in-round / delay to a later round / lose);
//             3. receive phase — every process that completes the round
//                receives its in-round messages plus any delayed messages
//                falling due, updates its state, and possibly decides or
//                halts.
//
// Modelling decisions (DESIGN.md Sect. 4): self-delivery is unconditional
// and in-round; a crashed process neither sends (if before_send) nor
// receives in its crash round; pending messages to crashed receivers are
// dropped.
//
// The kernel records everything in a RunTrace; the independent Validator
// (validator.hpp) re-checks model conformance from the trace alone.

#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"
#include "sim/trace.hpp"

namespace indulgence {

struct KernelOptions {
  Model model = Model::ES;

  /// Hard cap on executed rounds; hitting it marks the trace !terminated().
  Round max_rounds = 256;

  /// Stop as soon as every live process has decided (the usual mode).  When
  /// false, the kernel runs exactly max_rounds rounds (used by the explorer
  /// to examine fixed-length partial runs).
  bool stop_on_global_decision = true;
};

/// Per-worker scratch storage for the round loop.  A sweep worker keeps one
/// KernelScratch across millions of runs: execute_run clears the buffers
/// (retaining capacity) instead of reallocating them per run.  Algorithm
/// instances themselves are still factory-made each run — they are the
/// run's state — but every kernel-side container is reused.
struct KernelScratch {
  struct PendingMessage {
    Round deliver_round = 0;
    ProcessId receiver = -1;
    Envelope envelope;
  };
  struct Outgoing {
    ProcessId sender = -1;
    MessagePtr payload;
  };

  std::vector<std::unique_ptr<RoundAlgorithm>> algorithms;
  std::vector<char> alive;    ///< char, not bool: no bitset proxy churn
  std::vector<char> halted;
  std::vector<char> decided;
  std::vector<PendingMessage> pending;
  std::vector<Outgoing> outgoing;
  std::vector<Delivery> inboxes;
  /// Byzantine runs only (adversary.byzantine_budget() > 0): every sent
  /// payload, history[pid][round-1], so Replay lies can resend stale rounds.
  std::vector<std::vector<MessagePtr>> history;
};

/// Executes one run into `trace` (reset first), using `scratch` for every
/// kernel-side buffer.  The algorithm instances of the run are left in
/// `scratch.algorithms` for post-run inspection.  This is the reusable core
/// that Kernel and the campaign engine's RunContext both drive.
void execute_run(const SystemConfig& config, const KernelOptions& options,
                 const AlgorithmFactory& factory,
                 const std::vector<Value>& proposals, Adversary& adversary,
                 KernelScratch& scratch, RunTrace& trace);

class Kernel {
 public:
  /// `proposals[i]` is process i's proposal.  The adversary is borrowed and
  /// must outlive run().
  Kernel(SystemConfig config, KernelOptions options, AlgorithmFactory factory,
         std::vector<Value> proposals, Adversary& adversary);

  /// Executes the run and returns its trace.  Single-shot.
  RunTrace run();

  /// After run(): the algorithm instances, for state inspection (e.g. the
  /// elimination-property checks read each process' final new estimate).
  std::vector<std::unique_ptr<RoundAlgorithm>> take_algorithms() {
    return std::move(scratch_.algorithms);
  }

 private:
  SystemConfig config_;
  KernelOptions options_;
  AlgorithmFactory factory_;
  std::vector<Value> proposals_;
  Adversary& adversary_;
  bool used_ = false;
  KernelScratch scratch_;
};

/// Convenience wrapper: build a kernel and run a schedule in one call.
RunTrace run_schedule(SystemConfig config, KernelOptions options,
                      const AlgorithmFactory& factory,
                      const std::vector<Value>& proposals,
                      const RunSchedule& schedule);

}  // namespace indulgence
