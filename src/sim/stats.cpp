#include "sim/stats.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace indulgence {

void TraceStats::merge(const TraceStats& other) {
  rounds = std::max(rounds, other.rounds);
  sends += other.sends;
  dummy_sends += other.dummy_sends;
  deliveries += other.deliveries;
  delayed_deliveries += other.delayed_deliveries;
  lost_messages += other.lost_messages;
  suspicions += other.suspicions;
  wire_messages += other.wire_messages;
}

std::string TraceStats::to_string() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " sends=" << sends
     << " (dummy=" << dummy_sends << ") wire=" << wire_messages
     << " delivered=" << deliveries << " (delayed=" << delayed_deliveries
     << ") lost=" << lost_messages << " suspicions=" << suspicions;
  return os.str();
}

TraceStats compute_stats(const RunTrace& trace, Round until_round) {
  TraceStats stats;
  const Round horizon =
      until_round > 0 ? until_round : trace.rounds_executed();
  stats.rounds = horizon;
  const int n = trace.config().n;

  std::map<ProcessId, Round> crash_round;
  for (const CrashRecord& c : trace.crashes()) crash_round[c.pid] = c.round;
  auto completes = [&](ProcessId pid, Round k) {
    auto it = crash_round.find(pid);
    return it == crash_round.end() || it->second > k;
  };

  for (const SendRecord& s : trace.sends()) {
    if (s.round > horizon) continue;
    ++stats.sends;
    if (s.dummy) ++stats.dummy_sends;
    stats.wire_messages += n - 1;
  }

  std::set<std::tuple<ProcessId, Round, ProcessId>> delivered;
  for (const DeliveryRecord& d : trace.deliveries()) {
    if (d.recv_round > horizon) continue;
    ++stats.deliveries;
    if (d.recv_round > d.send_round) ++stats.delayed_deliveries;
    delivered.insert({d.sender, d.send_round, d.receiver});
  }

  // Pending messages are per-copy: one sender/round message may be delayed
  // to one receiver while another copy of it is lost outright.
  std::set<std::tuple<ProcessId, Round, ProcessId>> pending;
  for (const PendingRecord& p : trace.pending()) {
    pending.insert({p.sender, p.send_round, p.receiver});
  }

  for (const SendRecord& s : trace.sends()) {
    if (s.round > horizon) continue;
    for (ProcessId rec = 0; rec < n; ++rec) {
      if (rec == s.sender) continue;
      if (delivered.count({s.sender, s.round, rec})) continue;
      if (pending.count({s.sender, s.round, rec})) continue;
      // A copy counts as lost only if its receiver was still alive in the
      // send round; a receiver already crashed by then never expected it.
      // (Liveness at the horizon is the wrong test: a receiver crashing
      // mid-window used to hide every loss it suffered before crashing.)
      if (completes(rec, s.round)) ++stats.lost_messages;
    }
  }

  // Suspicions: a live (this round) sender's round-k message missing from a
  // completing receiver's round-k receipt.
  for (Round k = 1; k <= horizon; ++k) {
    std::set<ProcessId> sent_this_round;
    for (const SendRecord& s : trace.sends()) {
      if (s.round == k) sent_this_round.insert(s.sender);
    }
    for (ProcessId rec = 0; rec < n; ++rec) {
      if (!completes(rec, k)) continue;
      const ProcessSet got = trace.in_round_senders(rec, k);
      for (ProcessId sender : sent_this_round) {
        if (sender != rec && !got.contains(sender)) ++stats.suspicions;
      }
    }
  }
  return stats;
}

}  // namespace indulgence
