#include "core/at2_auth.hpp"

#include <stdexcept>

namespace indulgence {

At2Auth::At2Auth(ProcessId self, const SystemConfig& config,
                 At2AuthOptions options)
    : ConsensusBase(self, config), options_(options) {
  if (config.n <= 3 * config.t) {
    throw std::invalid_argument(
        "A_{t+2}^auth: Byzantine resilience requires n > 3t");
  }
}

std::string At2Auth::name() const {
  std::string base = "A_{t+2}^auth";
  if (options_.ablate_tags) base += "-notags";
  if (options_.ablate_echo) base += "-noecho";
  if (options_.ablate_dedup) base += "-nodedup";
  return base;
}

void At2Auth::begin_view(Round view) {
  cur_view_ = view;
  candidate_.reset();
  locked_this_view_ = false;
  prepare_support_.clear();
  commit_support_.clear();
  prepare_copies_.clear();
  commit_copies_.clear();
}

MessagePtr At2Auth::message_for_round(Round k) {
  if (announce_pending_) {
    return std::make_shared<AuthDecideMessage>(self(), k, *decision());
  }
  const Round view = view_of(k);
  if (view != cur_view_) begin_view(view);
  switch (phase_of(k)) {
    case 0:
      if (leader_of(view) == self()) {
        const bool locked = lock_view_ >= 0;
        return std::make_shared<AuthProposeMessage>(
            self(), k, view, locked ? lock_value_ : est_, lock_view_,
            lock_value_, lock_cert_);
      }
      return std::make_shared<FillerMessage>();
    case 1:
      return std::make_shared<AuthPrepareMessage>(
          self(), k, view, candidate_ ? *candidate_ : kBottom);
    default:
      return std::make_shared<AuthCommitMessage>(
          self(), k, view, locked_this_view_ ? lock_value_ : kBottom,
          lock_view_, lock_value_, lock_cert_);
  }
}

bool At2Auth::admit(const Envelope& env, ProcessId signer, Round stamp) {
  // The auth tag: the payload's claimed identity and round must match the
  // channel's — a mismatch is a forged sender id or a replayed stamp.
  if (!options_.ablate_tags &&
      (signer != env.sender || stamp != env.send_round)) {
    return false;
  }
  if (options_.ablate_dedup) return true;
  const ProcessId who = options_.ablate_tags ? env.sender : signer;
  if (convicted_.contains(who)) return false;
  const std::string desc = env.payload->describe();
  auto [it, inserted] = seen_.try_emplace({who, env.send_round}, desc);
  if (inserted) return true;
  if (it->second == desc) return false;  // duplicate copy of a counted vote
  // Two DIFFERENT payloads under one (signer, round) tag: a self-signed
  // proof of equivocation.  Convict; nothing from this signer counts again.
  convicted_.insert(who);
  return false;
}

void At2Auth::note_decide_claim(ProcessId signer, Value value) {
  if (value == kBottom) return;
  decide_claims_[value].insert(signer);
  // t+1 matching claims contain one honest decider; a lone claim (or an
  // unsigned HALT dummy) is only trusted by the ablated variants.
  const int needed = options_.ablate_dedup ? 1 : t() + 1;
  if (!has_decided() &&
      static_cast<int>(decide_claims_[value].size()) >= needed) {
    decide(value);
    announce_pending_ = true;
  }
}

int At2Auth::support(const std::map<Value, ProcessSet>& table,
                     const std::map<Value, int>& copies, Value value) const {
  const auto st = standing_.find(value);
  const int standing = st == standing_.end() ? 0 : st->second.size();
  if (options_.ablate_dedup) {
    const auto it = copies.find(value);
    return (it == copies.end() ? 0 : it->second) + standing;
  }
  ProcessSet voters;
  if (const auto it = table.find(value); it != table.end()) voters = it->second;
  if (st != standing_.end()) voters |= st->second;
  return voters.size();
}

void At2Auth::on_round(Round k, const Delivery& delivered) {
  if (announce_pending_) {
    // The signed DECIDE went out in this round's send phase; return from
    // propose(*) — the kernel answers with HaltedMessage dummies, and the
    // DECIDE keeps standing in for this process' votes at the receivers.
    announce_pending_ = false;
    halt();
    return;
  }

  const Round view = view_of(k);
  if (view != cur_view_) begin_view(view);
  const int phase = phase_of(k);

  for (const Envelope& env : delivered) {
    if (!env.payload) continue;
    if (const auto* h = env.as<HaltedMessage>()) {
      // Kernel dummies carry no tag; only the ablated variants trust them
      // (and even they ignore convicted senders).
      if ((options_.ablate_tags || options_.ablate_dedup) &&
          !convicted_.contains(env.sender)) {
        note_decide_claim(env.sender, h->decision());
      }
      continue;
    }
    if (const auto* m = env.as<AuthDecideMessage>()) {
      if (!admit(env, m->signer(), m->stamp())) continue;
      const ProcessId who = options_.ablate_tags ? env.sender : m->signer();
      // A signed DECIDE is a standing PREPARE/COMMIT for its value in every
      // later view: the decider halts but keeps quorums reachable.
      standing_[m->value()].insert(who);
      note_decide_claim(who, m->value());
      continue;
    }
    if (const auto* m = env.as<AuthProposeMessage>()) {
      if (!admit(env, m->signer(), m->stamp())) continue;
      const ProcessId who = options_.ablate_tags ? env.sender : m->signer();
      if (m->view() != view || phase != 0 || who != leader_of(view)) continue;
      if (m->value() == kBottom) continue;
      // Justification: a carried lock needs its echo certificate and must
      // propose the locked value; unlocked proposals need none.
      const bool cert_ok =
          m->lock_view() < 0 ||
          (static_cast<int>(m->cert().size()) >= cert_quorum() &&
           m->value() == m->lock_value());
      // Lock rule: never prepare against my own lock unless the proposal is
      // justified by an equal-or-later view (or re-proposes my value).
      const bool lock_ok = lock_view_ < 0 || m->lock_view() >= lock_view_ ||
                           m->value() == lock_value_;
      if (cert_ok && lock_ok) candidate_ = m->value();
      continue;
    }
    if (const auto* m = env.as<AuthPrepareMessage>()) {
      if (!admit(env, m->signer(), m->stamp())) continue;
      if (m->view() != view || m->value() == kBottom) continue;
      const ProcessId who = options_.ablate_tags ? env.sender : m->signer();
      prepare_support_[m->value()].insert(who);
      ++prepare_copies_[m->value()];
      continue;
    }
    if (const auto* m = env.as<AuthCommitMessage>()) {
      if (!admit(env, m->signer(), m->stamp())) continue;
      const ProcessId who = options_.ablate_tags ? env.sender : m->signer();
      // Lock catch-up (any view, delayed copies included): adopt a later
      // CERTIFIED lock so a future leadership turn can justify it.  The
      // cert is unforgeable content; an uncertified claim is ignored.
      if (m->lock_view() > lock_view_ &&
          static_cast<int>(m->lock_cert().size()) >= cert_quorum()) {
        lock_view_ = m->lock_view();
        lock_value_ = m->lock_value();
        lock_cert_ = m->lock_cert();
      }
      if (m->view() != view || m->value() == kBottom) continue;
      commit_support_[m->value()].insert(who);
      ++commit_copies_[m->value()];
      continue;
    }
    // FillerMessage (non-leader propose rounds) and foreign payloads.
  }

  if (phase == 1 && candidate_ && !locked_this_view_ &&
      support(prepare_support_, prepare_copies_, *candidate_) >=
          cert_quorum()) {
    lock_view_ = view;
    lock_value_ = *candidate_;
    lock_cert_ = prepare_support_[*candidate_];
    if (const auto st = standing_.find(*candidate_); st != standing_.end()) {
      lock_cert_ |= st->second;
    }
    locked_this_view_ = true;
  }

  if (phase == 2 && !has_decided()) {
    // Candidate values: anything with live commits or standing votes.
    for (const auto& [value, voters] : commit_support_) {
      (void)voters;
      if (support(commit_support_, commit_copies_, value) >= cert_quorum()) {
        decide(value);
        announce_pending_ = true;
        return;
      }
    }
    if (options_.ablate_dedup) {
      for (const auto& [value, count] : commit_copies_) {
        (void)count;
        if (support(commit_support_, commit_copies_, value) >= cert_quorum()) {
          decide(value);
          announce_pending_ = true;
          return;
        }
      }
    }
    for (const auto& [value, voters] : standing_) {
      (void)voters;
      if (support(commit_support_, commit_copies_, value) >= cert_quorum()) {
        decide(value);
        announce_pending_ = true;
        return;
      }
    }
  }
}

AlgorithmFactory at2_auth_factory(At2AuthOptions options) {
  return make_algorithm_factory<At2Auth>(options);
}

}  // namespace indulgence
