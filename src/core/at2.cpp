#include "core/at2.hpp"

#include <algorithm>
#include <stdexcept>

namespace indulgence {

At2::At2(ProcessId self, const SystemConfig& config,
         AlgorithmFactory underlying_factory, At2Options options)
    : ConsensusBase(self, config),
      underlying_factory_(std::move(underlying_factory)),
      options_(options) {
  if (!config.majority_correct()) {
    throw std::invalid_argument("A_{t+2} requires t < n/2 (indulgence)");
  }
  if (!underlying_factory_) {
    throw std::invalid_argument("A_{t+2} needs an underlying consensus C");
  }
}

Round At2::phase1_end() const {
  return options_.phase1_rounds > 0 ? options_.phase1_rounds : t() + 1;
}

std::string At2::name() const {
  std::string base = phase1_end() == t() + 1
                         ? "A_{t+2}"
                         : "A_{t+2}[phase1=" + std::to_string(phase1_end()) +
                               "]";
  if (options_.failure_free_opt) base += "+ff";
  if (options_.ablate_halt_exchange) base += "-haltxchg";
  if (options_.ablate_false_suspicion_check) base += "-fscheck";
  if (options_.ablate_halt_filter) base += "-haltfilter";
  return base;
}

MessagePtr At2::message_for_round(Round k) {
  if (announce_pending_) {
    return std::make_shared<DecideMessage>(*decision());
  }
  if (k <= phase1_end()) {
    return std::make_shared<At2EstimateMessage>(est_, halt_);
  }
  if (k == new_estimate_round()) {
    // Fig. 2 lines 9-10: nE := BOTTOM iff a false suspicion was detected
    // (|Halt| > t), else the final Phase-1 estimate.
    const bool detected =
        !options_.ablate_false_suspicion_check && halt_.size() > t();
    new_estimate_ = detected ? kBottom : est_;
    return std::make_shared<At2NewEstimateMessage>(*new_estimate_);
  }
  // Rounds t+3, t+4, ...: the underlying module C (inner rounds 1, 2, ...).
  if (!underlying_) {
    underlying_ = underlying_factory_(self(), config());
    underlying_->propose(vc_);
  }
  MessagePtr inner = underlying_->message_for_round(k - new_estimate_round());
  if (!inner) {
    throw std::logic_error("A_{t+2}: underlying C produced a null message");
  }
  return std::make_shared<At2UnderlyingMessage>(std::move(inner));
}

void At2::on_round(Round k, const Delivery& delivered) {
  if (announce_pending_) {
    // The DECIDE broadcast went out in this round's send phase; return from
    // propose(*) — the kernel keeps answering with HaltedMessage dummies.
    announce_pending_ = false;
    halt();
    return;
  }

  // A DECIDE notice (explicit DECIDE or a halted process' dummy) is always
  // safe to adopt: the carried value is someone's final decision.
  if (!has_decided()) {
    if (auto d = find_decide_notice(delivered)) {
      decide(*d);
      schedule_decide_announcement();
      return;
    }
  }

  if (k <= phase1_end()) {
    if (options_.failure_free_opt && k == 2 && try_failure_free_decide(delivered)) {
      return;
    }
    compute(k, delivered);
    return;
  }
  if (k == new_estimate_round()) {
    on_new_estimate_round(delivered);
    return;
  }
  run_underlying(k, delivered);
}

// Fig. 4: "if p_i receives round 2 messages from each of the n processes
// with Halt = {} then p_i decides immediately on any est value received";
// else if every round-2 message received has Halt = {}, p_i sets vc to any
// est value received (all such ests are equal when anyone decides, because
// a complete round-1 exchange makes every round-2 est the global minimum).
bool At2::try_failure_free_decide(const Delivery& delivered) {
  int round2_messages = 0;
  bool all_halt_empty = true;
  std::optional<Value> min_est;
  for (const Envelope& env : delivered) {
    if (env.send_round != 2) continue;
    if (const auto* m = env.as<At2EstimateMessage>()) {
      ++round2_messages;
      if (!m->halt().empty()) all_halt_empty = false;
      min_est = min_est ? std::min(*min_est, m->est()) : m->est();
    }
  }
  if (!all_halt_empty || !min_est) return false;
  if (round2_messages == n()) {
    decide(*min_est);
    schedule_decide_announcement();
    return true;
  }
  vc_ = *min_est;
  return false;
}

ProcessSet At2::suspects_for_round(Round, const ProcessSet& heard) {
  ProcessSet suspected = ProcessSet::all(n()) - heard;
  suspected.erase(self());  // a process never suspects itself
  return suspected;
}

// Fig. 2, procedure compute(), lines 30-35.
void At2::compute(Round k, const Delivery& delivered) {
  // Line 33 (first half): suspect every process whose round-k message did
  // not arrive in round k (or, in A_<>S, whomever the detector suspects).
  ProcessSet heard;
  for (const Envelope& env : delivered) {
    if (env.send_round == k && env.as<At2EstimateMessage>() != nullptr) {
      heard.insert(env.sender);
    }
  }
  halt_ |= suspects_for_round(k, heard);

  // Line 33 (second half): p_j suspected us in an earlier round — we are in
  // the Halt set p_j sent with its round-k ESTIMATE.
  if (!options_.ablate_halt_exchange) {
    for (const Envelope& env : delivered) {
      if (env.send_round != k) continue;
      if (const auto* m = env.as<At2EstimateMessage>()) {
        if (m->halt().contains(self())) halt_.insert(env.sender);
      }
    }
  }

  // Lines 34-35: restrict to senders outside Halt, take the minimum est.
  // Self-delivery plus "never suspect yourself" keep our own message in
  // msgSet, so est never increases (Observation O2).
  Value min_est = est_;
  bool any = false;
  for (const Envelope& env : delivered) {
    if (env.send_round != k) continue;
    if (!options_.ablate_halt_filter && halt_.contains(env.sender)) continue;
    if (const auto* m = env.as<At2EstimateMessage>()) {
      min_est = any ? std::min(min_est, m->est()) : m->est();
      any = true;
    }
  }
  if (any) est_ = min_est;
}

void At2::on_new_estimate_round(const Delivery& delivered) {
  // Fig. 2 lines 15-21: look at the round-(t+2) NEWESTIMATE messages.
  bool saw_bottom = false;
  std::optional<Value> non_bottom;
  for (const Envelope& env : delivered) {
    if (env.send_round != new_estimate_round()) continue;
    if (const auto* m = env.as<At2NewEstimateMessage>()) {
      if (m->is_bottom()) {
        saw_bottom = true;
      } else {
        non_bottom = m->new_estimate();
      }
    }
  }
  if (!saw_bottom && non_bottom) {
    // Only non-BOTTOM values: decide one (Lemma 6 makes them all equal).
    decide(*non_bottom);
    schedule_decide_announcement();
    return;
  }
  // Otherwise C's proposal is any non-BOTTOM nE received, else our proposal.
  if (non_bottom) vc_ = *non_bottom;
}

void At2::run_underlying(Round k, const Delivery& delivered) {
  if (!underlying_) {
    throw std::logic_error("A_{t+2}: receive before send in underlying round");
  }
  const Round inner_round = k - new_estimate_round();
  Delivery inner;
  inner.reserve(delivered.size());
  for (const Envelope& env : delivered) {
    if (const auto* wrapped = env.as<At2UnderlyingMessage>()) {
      const Round inner_send = env.send_round - new_estimate_round();
      if (inner_send >= 1) {
        inner.push_back(Envelope{env.sender, inner_send, wrapped->inner()});
      }
    }
  }
  underlying_->on_round(inner_round, inner);
  if (auto d = underlying_->decision()) {
    decide(*d);
    schedule_decide_announcement();
  }
}

AlgorithmFactory at2_factory(AlgorithmFactory underlying_factory,
                             At2Options options) {
  return [underlying_factory = std::move(underlying_factory), options](
             ProcessId self,
             const SystemConfig& config) -> std::unique_ptr<RoundAlgorithm> {
    return std::make_unique<At2>(self, config, underlying_factory, options);
  };
}

}  // namespace indulgence
