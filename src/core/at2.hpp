// A_{t+2} — the paper's matching consensus algorithm (Fig. 2), the core
// contribution this repository reproduces.
//
// Structure (Sect. 3):
//
//   Phase 1 (rounds 1 .. t+1): flood (ESTIMATE, k, est, Halt).  est is the
//   minimum estimate seen from non-Halt senders; Halt accumulates every
//   process p_j that this process suspected (no round-k message in round k)
//   or that suspected this process (self in the Halt set p_j sent).
//
//   Phase 2 (round t+2): a process detects a false suspicion iff
//   |Halt| > t; its new estimate nE is then BOTTOM, otherwise est.  After
//   exchanging (NEWESTIMATE, nE): if every nE received is non-BOTTOM the
//   process decides on one (the elimination property, Lemma 6, guarantees
//   they are all equal); otherwise it adopts any non-BOTTOM nE received as
//   the proposal vc for the underlying consensus module C and, from round
//   t+3 on, runs C.
//
//   A process that decided broadcasts DECIDE in the next round and returns;
//   any process that receives a DECIDE notice adopts the decision.
//
// Guarantees (reproduced by tests/benches):
//   * consensus (validity, uniform agreement, termination) in ES, t < n/2,
//     for ANY correct underlying C (Lemmas 12 and ff.);
//   * fast decision: global decision at round t+2 in EVERY synchronous run,
//     regardless of C (Lemma 13);
//   * with the failure-free optimization of Fig. 4 (enable_failure_free_opt),
//     global decision at round 2 in every failure-free synchronous run,
//     matching the 2-round lower bound of [11].
//
// The phase1_rounds knob exists for the lower-bound experiments: setting it
// to t (one round short) yields the "A_{t+1}" strawman that decides at
// round t+1 in synchronous runs — and, per Proposition 1, must violate
// agreement in some ES run, which lb/attack.cpp exhibits.

#pragma once

#include <optional>

#include "consensus/consensus.hpp"

namespace indulgence {

/// Phase-1 payload: (ESTIMATE, k, est, Halt).
class At2EstimateMessage final : public Message {
 public:
  At2EstimateMessage(Value est, ProcessSet halt) : est_(est), halt_(halt) {}

  Value est() const { return est_; }
  const ProcessSet& halt() const { return halt_; }

  std::string describe() const override {
    return "ESTIMATE(est=" + std::to_string(est_) + ", halt=" +
           halt_.to_string() + ")";
  }

  /// Only the estimate is lie-mutable; the halt set rides along unchanged.
  MessagePtr mutated(Value v) const override {
    return std::make_shared<At2EstimateMessage>(v, halt_);
  }

 private:
  Value est_;
  ProcessSet halt_;
};

/// Phase-2 payload: (NEWESTIMATE, nE); nE == kBottom encodes BOTTOM.
class At2NewEstimateMessage final : public Message {
 public:
  explicit At2NewEstimateMessage(Value new_estimate) : ne_(new_estimate) {}

  Value new_estimate() const { return ne_; }
  bool is_bottom() const { return ne_ == kBottom; }

  std::string describe() const override {
    return "NEWESTIMATE(" + (is_bottom() ? "BOTTOM" : std::to_string(ne_)) +
           ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<At2NewEstimateMessage>(v);
  }

 private:
  Value ne_;
};

/// Wrapper around the underlying consensus module C's round messages.
class At2UnderlyingMessage final : public Message {
 public:
  explicit At2UnderlyingMessage(MessagePtr inner) : inner_(std::move(inner)) {}

  const MessagePtr& inner() const { return inner_; }

  std::string describe() const override {
    return "C[" + inner_->describe() + "]";
  }

  /// Lies reach through to the wrapped module's payload.
  MessagePtr mutated(Value v) const override {
    MessagePtr inner = inner_->mutated(v);
    if (!inner) return nullptr;
    return std::make_shared<At2UnderlyingMessage>(std::move(inner));
  }

 private:
  MessagePtr inner_;
};

struct At2Options {
  /// Fig. 4: decide at round 2 when round 1 was a complete, suspicion-free
  /// exchange.
  bool failure_free_opt = false;

  /// Length of Phase 1; 0 means the canonical t + 1.  The lower-bound
  /// experiments set t to build the impossible "A_{t+1}".
  Round phase1_rounds = 0;

  // --- ablations (for the mechanism-necessity experiments) --------------
  // Each flag removes one load-bearing piece of Fig. 2; the ablation tests
  // and bench show which consensus property it was carrying.

  /// Drop the second clause of line 33: ignore "p_j suspected me" reports,
  /// i.e. no exchange of Halt sets (suspicion stays local knowledge).
  bool ablate_halt_exchange = false;

  /// Drop line 10's false-suspicion detection: nE is never BOTTOM, the
  /// Phase-1 estimate is always announced.
  bool ablate_false_suspicion_check = false;

  /// Drop line 34's filter: compute the Phase-1 minimum over ALL received
  /// current-round estimates, Halt members included.
  bool ablate_halt_filter = false;
};

class At2 : public ConsensusBase {
 public:
  /// `underlying_factory` builds the consensus module C (paper: any <>P- or
  /// <>S-based round algorithm transposed to ES).
  At2(ProcessId self, const SystemConfig& config,
      AlgorithmFactory underlying_factory, At2Options options = {});

  MessagePtr message_for_round(Round k) override;
  void on_round(Round k, const Delivery& delivered) override;

  std::string name() const override;

  // --- introspection for tests ------------------------------------------

  const ProcessSet& halt_set() const { return halt_; }
  Value estimate() const { return est_; }

  /// nE as computed at the beginning of round t+2 (nullopt before then).
  std::optional<Value> new_estimate() const { return new_estimate_; }

  /// True iff this process detected a false suspicion (|Halt| > t).
  bool detected_false_suspicion() const {
    return new_estimate_ && *new_estimate_ == kBottom;
  }

  /// True iff the process fell through to the underlying module C.
  bool used_underlying() const { return underlying_ != nullptr; }

 protected:
  void on_propose(Value v) override {
    est_ = v;
    vc_ = v;
  }

  /// Suspicion source for round k of Phase 1 (Fig. 2 line 33, first
  /// clause).  Base: the ES rule — suspect exactly the processes whose
  /// round-k message did not arrive in round k.  A_<>S (Fig. 3) overrides
  /// this to consult its failure-detector module instead.
  virtual ProcessSet suspects_for_round(Round k, const ProcessSet& heard);

 private:
  Round phase1_end() const;       ///< t+1 (or the truncated override)
  Round new_estimate_round() const { return phase1_end() + 1; }  ///< t+2

  void compute(Round k, const Delivery& delivered);   // Fig. 2 lines 30-35

  /// Fig. 4, inserted before compute() in round 2: decides when round 1 was
  /// a complete suspicion-free exchange; otherwise may pre-seed vc.  Returns
  /// true iff the process decided (normal round-2 processing is skipped).
  bool try_failure_free_decide(const Delivery& delivered);
  void on_new_estimate_round(const Delivery& delivered);
  void run_underlying(Round k, const Delivery& delivered);
  void schedule_decide_announcement() { announce_pending_ = true; }

  AlgorithmFactory underlying_factory_;
  At2Options options_;

  Value est_ = 0;            ///< minimum estimate seen (Fig. 2: est_i)
  ProcessSet halt_;          ///< Fig. 2: Halt_i
  Value vc_ = 0;             ///< proposal for the underlying module C
  std::optional<Value> new_estimate_;  ///< Fig. 2: nE_i, set at round t+2

  std::unique_ptr<RoundAlgorithm> underlying_;  ///< C, live from round t+3
  bool announce_pending_ = false;  ///< decided: broadcast DECIDE next round
};

/// Canonical factory: A_{t+2} with the given underlying module.
AlgorithmFactory at2_factory(AlgorithmFactory underlying_factory,
                             At2Options options = {});

}  // namespace indulgence
