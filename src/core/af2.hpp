// A_{f+2} — the paper's eventual-fast-decision algorithm (Fig. 5, Sect. 6),
// for t < n/3.
//
// Property (Lemma 15, "fast eventual decision"): in every run that is
// synchronous after round k with f crashes after round k (0 <= f <= t), the
// run globally decides by round k + f + 2.  In particular a synchronous run
// with f crashes decides by round f + 2 — A_{f+2} is early-deciding, unlike
// A_{t+2}.  Termination in ES follows (Lemma 16): every run decides by
// K + t + 2.
//
// One round of A_{f+2}, at process p_i (Fig. 5):
//   * received a DECIDE message (this round or delayed)?  decide it;
//   * msgSet := the n - t ESTIMATE messages of this round with the LOWEST
//     sender ids (deterministic selection is what beats the leader-based
//     AMR's two-round attempts);
//   * all ests in msgSet equal?        -> decide that value;
//   * some est occurs >= n - 2t times? -> adopt it (unique when t < n/3);
//   * otherwise                        -> adopt the minimum est in msgSet.
//
// Deciders broadcast DECIDE in the next round and return.

#pragma once

#include "consensus/consensus.hpp"

namespace indulgence {

class Af2EstimateMessage final : public Message {
 public:
  explicit Af2EstimateMessage(Value est) : est_(est) {}
  Value est() const { return est_; }
  std::string describe() const override {
    return "AF2-EST(" + std::to_string(est_) + ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<Af2EstimateMessage>(v);
  }

 private:
  Value est_;
};

class Af2 : public ConsensusBase {
 public:
  Af2(ProcessId self, const SystemConfig& config);

  MessagePtr message_for_round(Round k) override;
  void on_round(Round k, const Delivery& delivered) override;

  std::string name() const override { return "A_{f+2}"; }

  Value estimate() const { return est_; }

 protected:
  void on_propose(Value v) override { est_ = v; }

 private:
  Value est_ = 0;
  bool announce_pending_ = false;
};

AlgorithmFactory af2_factory();

}  // namespace indulgence
