// A_{t+2}^auth — the authenticated, Byzantine-resilient consensus variant
// (ISSUE 10; grounded in Abraham et al., "Efficient Synchronous Byzantine
// Consensus", and Attiya-Flam-Welch, "Why Canonical Rounds Fail for
// Optimal Byzantine Resilience", PAPERS.md).
//
// The crash-only algorithms break under a single liar because one round's
// broadcast is trusted as one value (equivocation splits the flood) and a
// sender id is trusted as an identity (forgery launders stale or mutated
// state).  A_{t+2}^auth survives b < n/3 output-mutation liars
// (sim/byzantine.hpp) with three mechanisms, each separately ablatable for
// the X1-style necessity matrix:
//
//   * AUTH TAGS — every payload carries (signer, stamp); a copy whose
//     envelope sender or send round disagrees is dropped.  In the kernel
//     this models per-link HMAC tags (the injection layer cannot write the
//     signer field of another process); over the socket transport the tags
//     are physically on the wire and survive header forgery.
//   * ECHO CERTIFICATES — nothing is locked, committed, or adopted on one
//     process' word: locks need n-t distinct-signer PREPARE echoes, and a
//     carried lock is believed only with its n-t certificate.  Equivocation
//     additionally CONVICTS the signer (two different payloads under one
//     (signer, stamp) tag), silencing it for the rest of the run.
//   * QUORUM DEDUP — votes are counted per distinct signer, never per
//     copy, and a decision is adopted only on t+1 matching signed DECIDE
//     claims (at least one honest), never on a lone notice.
//
// Protocol shape: rotating-leader locked consensus over the unchanged
// round kernel, requiring n > 3t.  Rounds group into views of 3:
//
//   view v = (k-1)/3, leader = v mod n
//   round 3v+1  PROPOSE  leader broadcasts (value, lock_view, lock_value,
//                        cert); justified by its highest certified lock,
//                        or its own estimate when unlocked.
//   round 3v+2  PREPARE  everyone echoes the accepted proposal (or BOTTOM);
//                        n-t matching echoes => lock (value, v) + cert.
//   round 3v+3  COMMIT   everyone broadcasts its view-v lock (or BOTTOM);
//                        n-t matching non-BOTTOM commits => decide.
//
// A proposal is accepted iff its certificate is valid and it does not
// contradict the receiver's own lock (same value, or a cert from an equal
// or later view).  Quorum intersection gives safety: two n-t quorums share
// n-2t >= t+1 processes, at least one honest, whose lock rule blocks any
// conflicting later certificate.  Liveness after GST: the first fully
// synchronous view with an honest leader collects every live lock in its
// COMMIT round, proposes the highest, and decides — crashes and silent
// liars cost views, never safety (the indulgence the paper prices, now
// priced for lies: 3 rounds per view vs A_{t+2}'s t+2 fast path).
//
// A decided process broadcasts a signed DECIDE for one round and halts;
// received signed DECIDEs are remembered as STANDING votes (the halted
// process forever supports its value), so quorums stay reachable after
// early deciders leave.  The guarantee assumes crashes + liars <= t.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "consensus/consensus.hpp"

namespace indulgence {

/// PROPOSE: the leader's (value, lock justification); signer/stamp are the
/// auth tag.  Non-leaders broadcast FillerMessage in propose rounds.
class AuthProposeMessage final : public Message {
 public:
  AuthProposeMessage(ProcessId signer, Round stamp, Round view, Value value,
                     Round lock_view, Value lock_value, ProcessSet cert)
      : signer_(signer),
        stamp_(stamp),
        view_(view),
        value_(value),
        lock_view_(lock_view),
        lock_value_(lock_value),
        cert_(cert) {}

  ProcessId signer() const { return signer_; }
  Round stamp() const { return stamp_; }
  Round view() const { return view_; }
  Value value() const { return value_; }
  Round lock_view() const { return lock_view_; }
  Value lock_value() const { return lock_value_; }
  const ProcessSet& cert() const { return cert_; }

  std::string describe() const override {
    return "AUTH-PROPOSE(p" + std::to_string(signer_) + "@" +
           std::to_string(stamp_) + " view=" + std::to_string(view_) +
           " value=" + std::to_string(value_) +
           " lock=" + std::to_string(lock_view_) + "/" +
           std::to_string(lock_value_) + " cert=" + cert_.to_string() + ")";
  }

  /// Only the CLAIM is lie-mutable; the tag and certificate model signed
  /// content (see sim/byzantine.hpp).
  MessagePtr mutated(Value v) const override {
    return std::make_shared<AuthProposeMessage>(signer_, stamp_, view_, v,
                                                lock_view_, lock_value_,
                                                cert_);
  }

 private:
  ProcessId signer_;
  Round stamp_;
  Round view_;
  Value value_;
  Round lock_view_;
  Value lock_value_;
  ProcessSet cert_;
};

/// PREPARE: echo of the accepted proposal (kBottom = no acceptable one).
class AuthPrepareMessage final : public Message {
 public:
  AuthPrepareMessage(ProcessId signer, Round stamp, Round view, Value value)
      : signer_(signer), stamp_(stamp), view_(view), value_(value) {}

  ProcessId signer() const { return signer_; }
  Round stamp() const { return stamp_; }
  Round view() const { return view_; }
  Value value() const { return value_; }

  std::string describe() const override {
    return "AUTH-PREPARE(p" + std::to_string(signer_) + "@" +
           std::to_string(stamp_) + " view=" + std::to_string(view_) +
           " value=" +
           (value_ == kBottom ? std::string("BOTTOM")
                              : std::to_string(value_)) +
           ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<AuthPrepareMessage>(signer_, stamp_, view_, v);
  }

 private:
  ProcessId signer_;
  Round stamp_;
  Round view_;
  Value value_;
};

/// COMMIT: the sender's view-v lock (kBottom = none), plus its current
/// certified lock so the next leader can justify a proposal.
class AuthCommitMessage final : public Message {
 public:
  AuthCommitMessage(ProcessId signer, Round stamp, Round view, Value value,
                    Round lock_view, Value lock_value, ProcessSet lock_cert)
      : signer_(signer),
        stamp_(stamp),
        view_(view),
        value_(value),
        lock_view_(lock_view),
        lock_value_(lock_value),
        lock_cert_(lock_cert) {}

  ProcessId signer() const { return signer_; }
  Round stamp() const { return stamp_; }
  Round view() const { return view_; }
  Value value() const { return value_; }
  Round lock_view() const { return lock_view_; }
  Value lock_value() const { return lock_value_; }
  const ProcessSet& lock_cert() const { return lock_cert_; }

  std::string describe() const override {
    return "AUTH-COMMIT(p" + std::to_string(signer_) + "@" +
           std::to_string(stamp_) + " view=" + std::to_string(view_) +
           " value=" +
           (value_ == kBottom ? std::string("BOTTOM")
                              : std::to_string(value_)) +
           " lock=" + std::to_string(lock_view_) + "/" +
           std::to_string(lock_value_) +
           " cert=" + lock_cert_.to_string() + ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<AuthCommitMessage>(signer_, stamp_, view_, v,
                                               lock_view_, lock_value_,
                                               lock_cert_);
  }

 private:
  ProcessId signer_;
  Round stamp_;
  Round view_;
  Value value_;
  Round lock_view_;
  Value lock_value_;
  ProcessSet lock_cert_;
};

/// Signed DECIDE: broadcast once by a decider before halting; doubles as a
/// standing PREPARE/COMMIT vote for the decided value in every later view.
class AuthDecideMessage final : public Message {
 public:
  AuthDecideMessage(ProcessId signer, Round stamp, Value value)
      : signer_(signer), stamp_(stamp), value_(value) {}

  ProcessId signer() const { return signer_; }
  Round stamp() const { return stamp_; }
  Value value() const { return value_; }

  std::string describe() const override {
    return "AUTH-DECIDE(p" + std::to_string(signer_) + "@" +
           std::to_string(stamp_) + " value=" + std::to_string(value_) + ")";
  }

  MessagePtr mutated(Value v) const override {
    return std::make_shared<AuthDecideMessage>(signer_, stamp_, v);
  }

 private:
  ProcessId signer_;
  Round stamp_;
  Value value_;
};

/// Mechanism ablations for the X9 necessity matrix.  Each flag removes one
/// defence; the Byzantine fuzz and the matrix tests show which lie class
/// then breaks agreement.
struct At2AuthOptions {
  /// Skip the (signer, stamp) tag check — forged envelope sender ids and
  /// replayed stamps are believed, and unsigned HALT notices are adopted.
  bool ablate_tags = false;

  /// Trust without echoes: lock/commit/adopt on ONE matching voice instead
  /// of an n-t certificate (equivocating leaders split the decision).
  bool ablate_echo = false;

  /// Count copies instead of distinct signers, and adopt a decision from a
  /// single claim instead of t+1 matching ones.
  bool ablate_dedup = false;
};

class At2Auth final : public ConsensusBase {
 public:
  At2Auth(ProcessId self, const SystemConfig& config,
          At2AuthOptions options = {});

  MessagePtr message_for_round(Round k) override;
  void on_round(Round k, const Delivery& delivered) override;

  std::string name() const override;

  // --- introspection for tests ------------------------------------------
  Round lock_view() const { return lock_view_; }
  Value lock_value() const { return lock_value_; }
  const ProcessSet& convicted() const { return convicted_; }

 protected:
  void on_propose(Value v) override { est_ = v; }

 private:
  int quorum() const { return n() - t(); }
  int cert_quorum() const { return options_.ablate_echo ? 1 : quorum(); }
  static Round view_of(Round k) { return (k - 1) / 3; }
  static int phase_of(Round k) { return static_cast<int>((k - 1) % 3); }
  ProcessId leader_of(Round view) const {
    return static_cast<ProcessId>(view % n());
  }

  void begin_view(Round view);
  /// Tag + dedup/conviction filter; true iff the copy should be processed.
  bool admit(const Envelope& env, ProcessId signer, Round stamp);
  void note_decide_claim(ProcessId signer, Value value);
  /// Distinct-signer support for `value` in `table`, standing votes
  /// included; plain copy count under ablate_dedup.
  int support(const std::map<Value, ProcessSet>& table,
              const std::map<Value, int>& copies, Value value) const;

  At2AuthOptions options_;
  Value est_ = 0;

  Round lock_view_ = -1;
  Value lock_value_ = kBottom;
  ProcessSet lock_cert_;

  Round cur_view_ = -1;
  std::optional<Value> candidate_;   ///< accepted proposal this view
  bool locked_this_view_ = false;
  std::map<Value, ProcessSet> prepare_support_;
  std::map<Value, ProcessSet> commit_support_;
  std::map<Value, int> prepare_copies_;  ///< ablate_dedup counters
  std::map<Value, int> commit_copies_;

  std::map<Value, ProcessSet> standing_;      ///< signed DECIDE votes
  std::map<Value, ProcessSet> decide_claims_;
  std::map<std::pair<ProcessId, Round>, std::string> seen_;  ///< dedup keys
  ProcessSet convicted_;

  bool announce_pending_ = false;  ///< decided: broadcast DECIDE next round
};

/// Factory for the eighth consensus target (requires n > 3t; throws
/// otherwise, which the fuzz driver reports as a skipped config).
AlgorithmFactory at2_auth_factory(At2AuthOptions options = {});

}  // namespace indulgence
