#include "core/af2.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace indulgence {

Af2::Af2(ProcessId self, const SystemConfig& config)
    : ConsensusBase(self, config) {
  if (!config.third_correct()) {
    throw std::invalid_argument("A_{f+2} requires t < n/3");
  }
}

MessagePtr Af2::message_for_round(Round) {
  if (announce_pending_) {
    return std::make_shared<DecideMessage>(*decision());
  }
  return std::make_shared<Af2EstimateMessage>(est_);
}

void Af2::on_round(Round k, const Delivery& delivered) {
  if (announce_pending_) {
    announce_pending_ = false;
    halt();
    return;
  }
  // "pi first checks whether it has received any DECIDE message from round
  // k or from a lower round, and if so, decides on the decision value
  // received."  Delayed DECIDEs count, hence no send_round filter.
  if (!has_decided()) {
    if (auto d = find_decide_notice(delivered)) {
      decide(*d);
      announce_pending_ = true;
      return;
    }
  }

  // msgSet: the n - t current-round estimates with the lowest sender ids.
  std::vector<std::pair<ProcessId, Value>> ests;
  for (const Envelope& env : delivered) {
    if (env.send_round != k) continue;
    if (const auto* m = env.as<Af2EstimateMessage>()) {
      ests.emplace_back(env.sender, m->est());
    }
  }
  std::sort(ests.begin(), ests.end());
  const int quorum = n() - t();
  if (static_cast<int>(ests.size()) > quorum) ests.resize(quorum);
  if (ests.empty()) return;

  std::map<Value, int> histogram;
  for (const auto& [sender, v] : ests) ++histogram[v];

  if (static_cast<int>(histogram.size()) == 1 &&
      static_cast<int>(ests.size()) >= quorum) {
    decide(ests.front().second);
    announce_pending_ = true;
    return;
  }
  const int threshold = n() - 2 * t();
  for (const auto& [v, count] : histogram) {
    if (count >= threshold) {
      // t < n/3 makes a >= n - 2t value unique within n - t votes.
      est_ = v;
      return;
    }
  }
  est_ = histogram.begin()->first;  // minimum est in msgSet
}

AlgorithmFactory af2_factory() { return make_algorithm_factory<Af2>(); }

}  // namespace indulgence
