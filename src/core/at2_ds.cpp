#include "core/at2_ds.hpp"

namespace indulgence {

AlgorithmFactory at2_ds_factory(AlgorithmFactory underlying_factory,
                                FailureDetectorFactory detector_factory,
                                At2Options options) {
  return [underlying_factory = std::move(underlying_factory),
          detector_factory = std::move(detector_factory),
          options](ProcessId self, const SystemConfig& config)
             -> std::unique_ptr<RoundAlgorithm> {
    return std::make_unique<At2DS>(self, config, underlying_factory,
                                   detector_factory, options);
  };
}

}  // namespace indulgence
