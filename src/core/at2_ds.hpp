// A_<>S — A_{t+2} transposed to an asynchronous round-based model enriched
// with an eventually strong failure detector (paper Fig. 3 and Sect. 5.1).
//
// The paper obtains A_<>S from A_{t+2} by (1) substituting the underlying
// module C with any <>S-based consensus algorithm and (2) modifying the
// wait conditions of lines 6 and 15 to "received >= n - t round-k messages
// AND a message from every process not suspected by the local detector".
// In the lock-step simulator the wait conditions are implicit; what changes
// observable behaviour is the SOURCE of suspicions, which here is the
// failure-detector module instead of raw message receipt.
//
// With the receipt-simulated detector of Sect. 4 the two algorithms behave
// identically (that is the content of Sect. 4's simulation argument, and a
// test asserts it).  With a scripted detector, A_<>S additionally tolerates
// false suspicions that are not explainable by message timing — the
// fast-decision property survives in synchronous runs because there the
// detector makes no mistakes (Sect. 5.1: "this property is relevant only in
// synchronous runs where the synchrony guarantees are much stronger").

#pragma once

#include "core/at2.hpp"
#include "fd/failure_detector.hpp"

namespace indulgence {

class At2DS final : public At2 {
 public:
  At2DS(ProcessId self, const SystemConfig& config,
        AlgorithmFactory underlying_factory,
        const FailureDetectorFactory& detector_factory,
        At2Options options = {})
      : At2(self, config, std::move(underlying_factory), options),
        detector_(detector_factory(self, config)) {}

  std::string name() const override {
    return "A_<>S[" + detector_->name() + "]";
  }

  const FailureDetector& detector() const { return *detector_; }

 protected:
  ProcessSet suspects_for_round(Round k, const ProcessSet& heard) override {
    detector_->observe_round(k, heard);
    return detector_->suspects();
  }

 private:
  std::unique_ptr<FailureDetector> detector_;
};

/// A_<>S with the given detector; default is the Sect. 4 receipt simulation.
AlgorithmFactory at2_ds_factory(AlgorithmFactory underlying_factory,
                                FailureDetectorFactory detector_factory,
                                At2Options options = {});

}  // namespace indulgence
