#include "lb/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace indulgence {

std::string AdversaryAction::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::NoOp:
      os << "noop";
      break;
    case Kind::Crash:
      os << "crash(p" << victim << ", delivered="
         << ProcessSet::from_mask(mask).to_string() << ")";
      break;
    case Kind::Delay:
      os << "delay(p" << victim << ", late-to="
         << ProcessSet::from_mask(mask).to_string() << ", +" << delay << ")";
      break;
  }
  return os.str();
}

std::vector<AdversaryAction> enumerate_actions(const SystemConfig& config,
                                               const ProcessSet& alive,
                                               int crashes_so_far,
                                               bool allow_delays,
                                               Round delay_gap) {
  std::vector<AdversaryAction> actions;
  actions.push_back({});  // NoOp

  // A new failing sender this round is admissible only if receivers still
  // see >= n - t current-round messages: crashed-so-far + 1 <= t.
  if (crashes_so_far + 1 > config.t) return actions;

  for (ProcessId v : alive) {
    ProcessSet others = alive;
    others.erase(v);
    const std::uint64_t others_mask = others.mask();
    // Crash: every subset of the other live processes may receive the final
    // message (iterate subsets of others_mask).
    std::uint64_t sub = others_mask;
    for (;;) {
      actions.push_back(
          {AdversaryAction::Kind::Crash, v, sub, 0});
      if (sub == 0) break;
      sub = (sub - 1) & others_mask;
    }
    if (allow_delays) {
      // Delay: a NONEMPTY subset of the others gets v's message late.  (The
      // empty subset is NoOp; the receivers in the subset falsely suspect
      // v this round.)
      sub = others_mask;
      while (sub != 0) {
        actions.push_back({AdversaryAction::Kind::Delay, v, sub, delay_gap});
        sub = (sub - 1) & others_mask;
      }
    }
  }
  return actions;
}

RunSchedule schedule_from_actions(
    const SystemConfig& config, const std::vector<AdversaryAction>& actions) {
  ScheduleBuilder b(config);
  Round gst = 1;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Round round = static_cast<Round>(i) + 1;
    const AdversaryAction& a = actions[i];
    switch (a.kind) {
      case AdversaryAction::Kind::NoOp:
        break;
      case AdversaryAction::Kind::Crash: {
        const ProcessSet delivered = ProcessSet::from_mask(a.mask);
        if (delivered.empty()) {
          b.crash(a.victim, round, /*before_send=*/true);
        } else {
          b.crash(a.victim, round);
          ProcessSet lost = ProcessSet::all(config.n) - delivered;
          lost.erase(a.victim);
          b.losing_to(a.victim, round, lost);
        }
        break;
      }
      case AdversaryAction::Kind::Delay: {
        b.delaying_to(a.victim, round, ProcessSet::from_mask(a.mask),
                      round + a.delay);
        gst = std::max(gst, round + a.delay);
        break;
      }
    }
  }
  b.gst(gst);
  return b.build();
}

long for_each_action_sequence(
    const SystemConfig& config, Round rounds, bool allow_delays,
    Round delay_gap,
    const std::function<bool(const std::vector<AdversaryAction>&)>& visit) {
  config.validate();
  long visited = 0;
  std::vector<AdversaryAction> actions;
  bool keep_going = true;

  // Depth-first over rounds; alive/crash state threaded through recursion.
  std::function<void(Round, ProcessSet, int)> recurse =
      [&](Round depth, ProcessSet alive, int crashes) {
        if (!keep_going) return;
        if (depth == rounds) {
          ++visited;
          if (!visit(actions)) keep_going = false;
          return;
        }
        for (const AdversaryAction& a : enumerate_actions(
                 config, alive, crashes, allow_delays, delay_gap)) {
          actions.push_back(a);
          if (a.kind == AdversaryAction::Kind::Crash) {
            ProcessSet next_alive = alive;
            next_alive.erase(a.victim);
            recurse(depth + 1, next_alive, crashes + 1);
          } else {
            recurse(depth + 1, alive, crashes);
          }
          actions.pop_back();
          if (!keep_going) return;
        }
      };
  recurse(0, ProcessSet::all(config.n), 0);
  return visited;
}

WorstCaseResult worst_case_over_deliveries(
    SystemConfig config, const AlgorithmFactory& factory,
    const std::vector<Value>& proposals, const std::vector<CrashSlot>& slots,
    long exhaustive_limit, long samples, std::uint64_t seed,
    Round max_rounds) {
  config.validate();
  if (static_cast<int>(slots.size()) > config.t) {
    throw std::invalid_argument("worst_case_over_deliveries: > t crashes");
  }

  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds;

  // Delivery pattern per slot: a mask over the other n-1 processes.
  const int bits_per_slot = config.n - 1;
  const int total_bits = bits_per_slot * static_cast<int>(slots.size());
  const bool exhaustive =
      total_bits < 63 && (1LL << total_bits) <= exhaustive_limit;

  WorstCaseResult result;

  auto evaluate = [&](std::uint64_t packed) {
    ScheduleBuilder b(config);
    std::uint64_t cursor = packed;
    for (const CrashSlot& slot : slots) {
      ProcessSet delivered;
      int bit = 0;
      for (ProcessId pid = 0; pid < config.n; ++pid) {
        if (pid == slot.victim) continue;
        if ((cursor >> bit) & 1u) delivered.insert(pid);
        ++bit;
      }
      cursor >>= bits_per_slot;
      if (delivered.empty()) {
        b.crash(slot.victim, slot.round, /*before_send=*/true);
      } else {
        b.crash(slot.victim, slot.round);
        ProcessSet lost = ProcessSet::all(config.n) - delivered;
        lost.erase(slot.victim);
        b.losing_to(slot.victim, slot.round, lost);
      }
    }
    const RunSchedule schedule = b.build();
    RunResult r = run_and_check(config, options, factory, proposals, schedule);
    ++result.runs;
    if (!r.ok()) {
      result.all_ok = false;
      return;
    }
    if (*r.global_decision_round > result.worst_decision_round) {
      result.worst_decision_round = *r.global_decision_round;
      result.schedule = schedule;
    }
  };

  if (exhaustive) {
    const std::uint64_t limit = std::uint64_t{1} << total_bits;
    for (std::uint64_t packed = 0; packed < limit; ++packed) evaluate(packed);
  } else {
    Rng rng(seed);
    for (long i = 0; i < samples; ++i) {
      std::uint64_t packed = rng.next_u64();
      if (total_bits < 64) packed &= (std::uint64_t{1} << total_bits) - 1;
      evaluate(packed);
    }
  }
  return result;
}

SyncRunExplorer::SyncRunExplorer(SystemConfig config, AlgorithmFactory factory,
                                 std::vector<Value> proposals)
    : config_(config),
      factory_(std::move(factory)),
      proposals_(std::move(proposals)) {
  config_.validate();
}

SyncRunExplorer::Stats SyncRunExplorer::explore(Round action_rounds,
                                                Round max_rounds) {
  Stats stats;
  stats.min_decision_round = max_rounds + 1;
  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds;

  for_each_action_sequence(
      config_, action_rounds, /*allow_delays=*/false, /*delay_gap=*/0,
      [&](const std::vector<AdversaryAction>& actions) {
        const RunSchedule schedule = schedule_from_actions(config_, actions);
        RunResult r =
            run_and_check(config_, options, factory_, proposals_, schedule);
        ++stats.runs;
        stats.all_valid &= r.validation.ok();
        stats.all_agreement &= r.agreement;
        stats.all_validity &= r.validity;
        stats.all_terminated &= r.termination;
        if (r.global_decision_round) {
          if (*r.global_decision_round > stats.max_decision_round) {
            stats.max_decision_round = *r.global_decision_round;
            stats.worst_schedule = schedule;
          }
          stats.min_decision_round =
              std::min(stats.min_decision_round, *r.global_decision_round);
        }
        for (const DecisionRecord& d : r.trace.decisions()) {
          stats.decision_values.insert(d.value);
        }
        return true;
      });
  return stats;
}

}  // namespace indulgence
