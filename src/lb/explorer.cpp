#include "lb/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace indulgence {

std::string AdversaryAction::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::NoOp:
      os << "noop";
      break;
    case Kind::Crash:
      os << "crash(p" << victim << ", delivered="
         << ProcessSet::from_mask(mask).to_string() << ")";
      break;
    case Kind::Delay:
      os << "delay(p" << victim << ", late-to="
         << ProcessSet::from_mask(mask).to_string() << ", +" << delay << ")";
      break;
  }
  return os.str();
}

std::vector<AdversaryAction> enumerate_actions(const SystemConfig& config,
                                               const ProcessSet& alive,
                                               int crashes_so_far,
                                               bool allow_delays,
                                               Round delay_gap) {
  std::vector<AdversaryAction> actions;
  actions.push_back({});  // NoOp

  // A new failing sender this round is admissible only if receivers still
  // see >= n - t current-round messages: crashed-so-far + 1 <= t.
  if (crashes_so_far + 1 > config.t) return actions;

  for (ProcessId v : alive) {
    ProcessSet others = alive;
    others.erase(v);
    const std::uint64_t others_mask = others.mask();
    // Crash: every subset of the other live processes may receive the final
    // message (iterate subsets of others_mask).
    std::uint64_t sub = others_mask;
    for (;;) {
      actions.push_back(
          {AdversaryAction::Kind::Crash, v, sub, 0});
      if (sub == 0) break;
      sub = (sub - 1) & others_mask;
    }
    if (allow_delays) {
      // Delay: a NONEMPTY subset of the others gets v's message late.  (The
      // empty subset is NoOp; the receivers in the subset falsely suspect
      // v this round.)
      sub = others_mask;
      while (sub != 0) {
        actions.push_back({AdversaryAction::Kind::Delay, v, sub, delay_gap});
        sub = (sub - 1) & others_mask;
      }
    }
  }
  return actions;
}

RunSchedule schedule_from_actions(
    const SystemConfig& config, const std::vector<AdversaryAction>& actions) {
  ScheduleBuilder b(config);
  Round gst = 1;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Round round = static_cast<Round>(i) + 1;
    const AdversaryAction& a = actions[i];
    switch (a.kind) {
      case AdversaryAction::Kind::NoOp:
        break;
      case AdversaryAction::Kind::Crash: {
        const ProcessSet delivered = ProcessSet::from_mask(a.mask);
        if (delivered.empty()) {
          b.crash(a.victim, round, /*before_send=*/true);
        } else {
          b.crash(a.victim, round);
          ProcessSet lost = ProcessSet::all(config.n) - delivered;
          lost.erase(a.victim);
          b.losing_to(a.victim, round, lost);
        }
        break;
      }
      case AdversaryAction::Kind::Delay: {
        b.delaying_to(a.victim, round, ProcessSet::from_mask(a.mask),
                      round + a.delay);
        gst = std::max(gst, round + a.delay);
        break;
      }
    }
  }
  b.gst(gst);
  return b.build();
}

namespace {

/// Depth-first core shared by the whole-space and per-prefix entry points:
/// extends `actions` (the serial prefix chosen so far) to `rounds` rounds,
/// threading alive/crash state through the recursion.
struct SequenceEnumerator {
  const SystemConfig& config;
  Round rounds;
  bool allow_delays;
  Round delay_gap;
  const std::function<bool(const std::vector<AdversaryAction>&)>& visit;

  long visited = 0;
  bool keep_going = true;

  void recurse(std::vector<AdversaryAction>& actions, Round depth,
               ProcessSet alive, int crashes) {
    if (!keep_going) return;
    if (depth == rounds) {
      ++visited;
      if (!visit(actions)) keep_going = false;
      return;
    }
    for (const AdversaryAction& a : enumerate_actions(
             config, alive, crashes, allow_delays, delay_gap)) {
      actions.push_back(a);
      if (a.kind == AdversaryAction::Kind::Crash) {
        ProcessSet next_alive = alive;
        next_alive.erase(a.victim);
        recurse(actions, depth + 1, next_alive, crashes + 1);
      } else {
        recurse(actions, depth + 1, alive, crashes);
      }
      actions.pop_back();
      if (!keep_going) return;
    }
  }
};

}  // namespace

long for_each_action_sequence(
    const SystemConfig& config, Round rounds, bool allow_delays,
    Round delay_gap,
    const std::function<bool(const std::vector<AdversaryAction>&)>& visit) {
  config.validate();
  SequenceEnumerator e{config, rounds, allow_delays, delay_gap, visit};
  std::vector<AdversaryAction> actions;
  actions.reserve(static_cast<std::size_t>(rounds));
  e.recurse(actions, 0, ProcessSet::all(config.n), 0);
  return e.visited;
}

long for_each_action_sequence_from(
    const SystemConfig& config, const std::vector<AdversaryAction>& prefix,
    Round rounds, bool allow_delays, Round delay_gap,
    const std::function<bool(const std::vector<AdversaryAction>&)>& visit) {
  config.validate();
  if (static_cast<Round>(prefix.size()) > rounds) {
    throw std::invalid_argument(
        "for_each_action_sequence_from: prefix longer than rounds");
  }
  ProcessSet alive = ProcessSet::all(config.n);
  int crashes = 0;
  for (const AdversaryAction& a : prefix) {
    if (a.kind == AdversaryAction::Kind::Crash) {
      alive.erase(a.victim);
      ++crashes;
    }
  }
  SequenceEnumerator e{config, rounds, allow_delays, delay_gap, visit};
  std::vector<AdversaryAction> actions = prefix;
  actions.reserve(static_cast<std::size_t>(rounds));
  e.recurse(actions, static_cast<Round>(prefix.size()), alive, crashes);
  return e.visited;
}

void WorstCaseResult::merge(const WorstCaseResult& other) {
  runs += other.runs;
  all_ok &= other.all_ok;
  if (other.worst_decision_round > worst_decision_round) {
    worst_decision_round = other.worst_decision_round;
    schedule = other.schedule;
  }
}

WorstCaseResult worst_case_over_deliveries(
    SystemConfig config, const AlgorithmFactory& factory,
    const std::vector<Value>& proposals, const std::vector<CrashSlot>& slots,
    long exhaustive_limit, long samples, std::uint64_t seed, Round max_rounds,
    CampaignOptions campaign) {
  config.validate();
  if (static_cast<int>(slots.size()) > config.t) {
    throw std::invalid_argument("worst_case_over_deliveries: > t crashes");
  }

  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds;

  // Delivery pattern per slot: a mask over the other n-1 processes.
  const int bits_per_slot = config.n - 1;
  const int total_bits = bits_per_slot * static_cast<int>(slots.size());
  const bool exhaustive =
      total_bits < 63 && (1LL << total_bits) <= exhaustive_limit;

  // The patterns to examine, indexed 0..total-1.  Exhaustive mode uses the
  // index itself; sampled mode pre-draws the whole list from Rng(seed), so
  // the examined patterns match the sequential sweep draw-for-draw no
  // matter how the index range is later chunked.
  std::vector<std::uint64_t> drawn;
  long total;
  if (exhaustive) {
    total = 1L << total_bits;
  } else {
    total = samples;
    drawn.reserve(static_cast<std::size_t>(samples));
    Rng rng(seed);
    for (long i = 0; i < samples; ++i) {
      std::uint64_t packed = rng.next_u64();
      if (total_bits < 64) packed &= (std::uint64_t{1} << total_bits) - 1;
      drawn.push_back(packed);
    }
  }

  auto evaluate = [&](std::uint64_t packed, RunContext& ctx,
                      WorstCaseResult& partial) {
    ScheduleBuilder b(config);
    std::uint64_t cursor = packed;
    for (const CrashSlot& slot : slots) {
      ProcessSet delivered;
      int bit = 0;
      for (ProcessId pid = 0; pid < config.n; ++pid) {
        if (pid == slot.victim) continue;
        if ((cursor >> bit) & 1u) delivered.insert(pid);
        ++bit;
      }
      cursor >>= bits_per_slot;
      if (delivered.empty()) {
        b.crash(slot.victim, slot.round, /*before_send=*/true);
      } else {
        b.crash(slot.victim, slot.round);
        ProcessSet lost = ProcessSet::all(config.n) - delivered;
        lost.erase(slot.victim);
        b.losing_to(slot.victim, slot.round, lost);
      }
    }
    const RunSchedule schedule = b.build();
    const RunResult& r = ctx.run(factory, proposals, schedule);
    ++partial.runs;
    if (!r.ok()) {
      partial.all_ok = false;
      return;
    }
    if (*r.global_decision_round > partial.worst_decision_round) {
      partial.worst_decision_round = *r.global_decision_round;
      partial.schedule = schedule;
    }
  };

  return parallel_reduce<WorstCaseResult>(
      total, campaign.resolved_chunk(256), campaign.resolved_jobs(),
      WorstCaseResult{}, [&](long, long begin, long end) {
        WorstCaseResult partial;
        RunContext ctx(config, options);
        for (long i = begin; i < end; ++i) {
          evaluate(exhaustive ? static_cast<std::uint64_t>(i)
                              : drawn[static_cast<std::size_t>(i)],
                   ctx, partial);
        }
        return partial;
      });
}

SyncRunExplorer::SyncRunExplorer(SystemConfig config, AlgorithmFactory factory,
                                 std::vector<Value> proposals)
    : config_(config),
      factory_(std::move(factory)),
      proposals_(std::move(proposals)) {
  config_.validate();
}

void SyncRunExplorer::Stats::merge(const Stats& other) {
  runs += other.runs;
  if (other.max_decision_round > max_decision_round) {
    max_decision_round = other.max_decision_round;
    worst_schedule = other.worst_schedule;
  }
  min_decision_round = std::min(min_decision_round, other.min_decision_round);
  all_valid &= other.all_valid;
  all_agreement &= other.all_agreement;
  all_validity &= other.all_validity;
  all_terminated &= other.all_terminated;
  decision_values.insert(other.decision_values.begin(),
                         other.decision_values.end());
}

SyncRunExplorer::Stats SyncRunExplorer::explore(Round action_rounds,
                                                Round max_rounds,
                                                CampaignOptions campaign) {
  Stats init;
  init.min_decision_round = max_rounds + 1;
  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds;

  auto record = [&](RunContext& ctx,
                    const std::vector<AdversaryAction>& actions,
                    Stats& stats) {
    const RunSchedule schedule = schedule_from_actions(config_, actions);
    const RunResult& r = ctx.run(factory_, proposals_, schedule);
    ++stats.runs;
    stats.all_valid &= r.validation.ok();
    stats.all_agreement &= r.agreement;
    stats.all_validity &= r.validity;
    stats.all_terminated &= r.termination;
    if (r.global_decision_round) {
      if (*r.global_decision_round > stats.max_decision_round) {
        stats.max_decision_round = *r.global_decision_round;
        stats.worst_schedule = schedule;
      }
      stats.min_decision_round =
          std::min(stats.min_decision_round, *r.global_decision_round);
    }
    for (const DecisionRecord& d : r.trace.decisions()) {
      stats.decision_values.insert(d.value);
    }
  };

  if (action_rounds <= 0) {
    // A single crash-free run; nothing to partition.
    Stats stats = init;
    RunContext ctx(config_, options);
    record(ctx, {}, stats);
    return stats;
  }

  // Partition by first-round action: one independent subtree per item.
  const std::vector<AdversaryAction> first = enumerate_actions(
      config_, ProcessSet::all(config_.n), 0, /*allow_delays=*/false, 0);
  return parallel_reduce<Stats>(
      static_cast<long>(first.size()), campaign.resolved_chunk(1),
      campaign.resolved_jobs(), init, [&](long, long begin, long end) {
        Stats partial = init;
        RunContext ctx(config_, options);
        for (long i = begin; i < end; ++i) {
          for_each_action_sequence_from(
              config_, {first[static_cast<std::size_t>(i)]}, action_rounds,
              /*allow_delays=*/false, /*delay_gap=*/0,
              [&](const std::vector<AdversaryAction>& actions) {
                record(ctx, actions, partial);
                return true;
              });
        }
        return partial;
      });
}

}  // namespace indulgence
