#include "lb/valency.hpp"

#include <stdexcept>

namespace indulgence {

namespace {

/// Crash count / liveness state implied by an action prefix.
struct PrefixState {
  ProcessSet alive;
  int crashes = 0;
};

PrefixState state_after(const SystemConfig& config,
                        const std::vector<AdversaryAction>& prefix) {
  PrefixState s{ProcessSet::all(config.n), 0};
  for (const AdversaryAction& a : prefix) {
    if (a.kind == AdversaryAction::Kind::Crash) {
      s.alive.erase(a.victim);
      ++s.crashes;
    }
  }
  return s;
}

}  // namespace

ValencyAnalyzer::ValencyAnalyzer(SystemConfig config, AlgorithmFactory factory,
                                 Round extension_rounds, Round max_rounds)
    : config_(config),
      factory_(std::move(factory)),
      extension_rounds_(extension_rounds),
      max_rounds_(max_rounds) {
  config_.validate();
}

std::set<Value> ValencyAnalyzer::valency(
    const std::vector<Value>& proposals,
    const std::vector<AdversaryAction>& prefix) {
  std::set<Value> values;
  last_all_terminated_ = true;

  KernelOptions options;
  options.model = Model::ES;
  options.max_rounds = max_rounds_;

  // Enumerate serial continuations for `extension_rounds_` further rounds;
  // all later rounds are crash-free, so every decision pattern reachable by
  // a serial extension within the horizon is covered.
  std::vector<AdversaryAction> actions = prefix;
  const PrefixState base = state_after(config_, prefix);

  std::function<void(Round, ProcessSet, int)> recurse =
      [&](Round depth, ProcessSet alive, int crashes) {
        if (depth == extension_rounds_) {
          const RunSchedule schedule =
              schedule_from_actions(config_, actions);
          RunResult r = run_and_check(config_, options, factory_, proposals,
                                      schedule);
          if (!r.termination) {
            last_all_terminated_ = false;
            return;
          }
          if (!r.trace.decisions().empty()) {
            values.insert(r.trace.decisions().front().value);
          }
          return;
        }
        for (const AdversaryAction& a :
             enumerate_actions(config_, alive, crashes,
                               /*allow_delays=*/false, /*delay_gap=*/0)) {
          actions.push_back(a);
          if (a.kind == AdversaryAction::Kind::Crash) {
            ProcessSet next_alive = alive;
            next_alive.erase(a.victim);
            recurse(depth + 1, next_alive, crashes + 1);
          } else {
            recurse(depth + 1, alive, crashes);
          }
          actions.pop_back();
        }
      };
  recurse(0, base.alive, base.crashes);
  return values;
}

ValencyAnalyzer::Profile ValencyAnalyzer::profile(
    const std::vector<Value>& proposals, Round max_prefix_len) {
  Profile p;
  p.prefixes_checked.assign(max_prefix_len + 1, 0);
  p.bivalent_prefixes.assign(max_prefix_len + 1, 0);

  for (Round len = 0; len <= max_prefix_len; ++len) {
    for_each_action_sequence(
        config_, len, /*allow_delays=*/false, /*delay_gap=*/0,
        [&](const std::vector<AdversaryAction>& prefix) {
          ++p.prefixes_checked[len];
          const std::set<Value> v = valency(proposals, prefix);
          if (!last_all_terminated_) p.all_terminated = false;
          if (v.size() >= 2) ++p.bivalent_prefixes[len];
          return true;
        });
  }
  return p;
}

int ValencyAnalyzer::count_bivalent_binary_initial_configs() {
  int bivalent = 0;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << config_.n);
       ++bits) {
    std::vector<Value> proposals(config_.n);
    for (int i = 0; i < config_.n; ++i) proposals[i] = (bits >> i) & 1;
    if (valency(proposals, {}).size() >= 2) ++bivalent;
  }
  return bivalent;
}

}  // namespace indulgence
