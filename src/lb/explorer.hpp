// Exhaustive enumeration of adversary behaviours for small (n, t).
//
// The lower bound (Proposition 1) quantifies over runs; for small systems we
// can enumerate them.  A run is described by one AdversaryAction per round:
//
//   * NoOp            — crash-free, fully synchronous round;
//   * Crash{v, S}     — v crashes this round; exactly the processes in S
//                       receive its final round message (S = empty models a
//                       crash before the send phase, as survivors cannot
//                       tell the difference);
//   * Delay{v, H, d}  — ES only: v stays alive but its round message to the
//                       processes in H arrives d rounds late (they falsely
//                       suspect v this round).
//
// At most one action per round ("serial" adversaries, exactly the runs the
// paper's proof plays with), and every action respects the ES t-resilience
// receipt bound by construction: a receiver can miss at most t current-round
// messages, counting already-crashed senders.
//
// Two consumers:
//   * SyncRunExplorer — synchronous runs only ({NoOp, Crash}): exact
//     worst-case/best-case global decision rounds, agreement/validity over
//     ALL synchronous serial runs (tightness of Lemma 13, R4/R5 round
//     counts);
//   * the attack search in attack.hpp — adds Delay actions and hunts for a
//     single ES run violating agreement (Proposition 1, made executable).

// Sweeps are executed on the parallel campaign engine (common/thread_pool):
// the action-sequence space is partitioned into independent chunks by its
// FIRST-ROUND action, each chunk is explored depth-first on a pool worker
// with its own reusable RunContext, and the per-chunk partial statistics
// are merged in chunk order.  Because every partial is a monoid with
// left-biased tie-breaking, the totals — including which schedule is
// reported as worst — are bit-identical at any job count, and identical to
// the sequential sweep (INDULGENCE_JOBS=1 forces the inline path).

#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/harness.hpp"

namespace indulgence {

struct AdversaryAction {
  enum class Kind { NoOp, Crash, Delay } kind = Kind::NoOp;
  ProcessId victim = -1;
  std::uint64_t mask = 0;   ///< Crash: receivers of the final message;
                            ///< Delay: receivers whose copy is late
  Round delay = 0;          ///< Delay: lateness in rounds (>= 1)

  std::string to_string() const;
};

/// The actions available in round `round`, given who is still alive and how
/// many crashes happened already.  `allow_delays` enables the ES Delay
/// actions (with lateness `delay_gap`).
std::vector<AdversaryAction> enumerate_actions(const SystemConfig& config,
                                               const ProcessSet& alive,
                                               int crashes_so_far,
                                               bool allow_delays,
                                               Round delay_gap);

/// Builds the explicit schedule realizing one action sequence (actions[i]
/// applies to round i + 1; rounds beyond the sequence are crash-free).
RunSchedule schedule_from_actions(const SystemConfig& config,
                                  const std::vector<AdversaryAction>& actions);

/// Enumerates every serial action sequence of length `rounds` and calls
/// `visit`; returns the number of sequences visited.  `visit` returning
/// false stops the enumeration early.
long for_each_action_sequence(
    const SystemConfig& config, Round rounds, bool allow_delays,
    Round delay_gap,
    const std::function<bool(const std::vector<AdversaryAction>&)>& visit);

/// As for_each_action_sequence, but enumerates only the sequences that
/// begin with `prefix` (serial actions already chosen for rounds
/// 1..prefix.size()).  This is the campaign engine's partitioning primitive:
/// the sequence space splits into one independent subtree per first-round
/// action, and a worker sweeps one subtree per work item.
long for_each_action_sequence_from(
    const SystemConfig& config, const std::vector<AdversaryAction>& prefix,
    Round rounds, bool allow_delays, Round delay_gap,
    const std::function<bool(const std::vector<AdversaryAction>&)>& visit);

/// Exhaustive sweep over all synchronous serial runs of an algorithm.
class SyncRunExplorer {
 public:
  struct Stats {
    long runs = 0;
    Round max_decision_round = 0;
    Round min_decision_round = 0;
    bool all_valid = true;        ///< every trace passed the model validator
    bool all_agreement = true;
    bool all_validity = true;
    bool all_terminated = true;
    std::set<Value> decision_values;  ///< across all runs
    std::optional<RunSchedule> worst_schedule;

    bool all_ok() const {
      return all_valid && all_agreement && all_validity && all_terminated;
    }

    /// Monoid merge of a later chunk's partial statistics into this one.
    /// Counts add, flags AND, value sets union; the worst schedule is
    /// replaced only on a STRICTLY larger decision round, so the earliest
    /// witness (in enumeration order) wins at any chunking.
    void merge(const Stats& other);
  };

  SyncRunExplorer(SystemConfig config, AlgorithmFactory factory,
                  std::vector<Value> proposals);

  /// Enumerates all serial synchronous runs whose crashes happen within the
  /// first `action_rounds` rounds (use >= t to cover every serial pattern
  /// that matters) and runs each to completion (cap `max_rounds`).  The
  /// sweep executes on `campaign.jobs` workers; results are independent of
  /// the job count.
  Stats explore(Round action_rounds, Round max_rounds = 64,
                CampaignOptions campaign = {});

 private:
  SystemConfig config_;
  AlgorithmFactory factory_;
  std::vector<Value> proposals_;
};

/// A crash whose round and victim are fixed but whose delivery pattern (who
/// receives the final message) is left to the search.
struct CrashSlot {
  ProcessId victim = -1;
  Round round = 0;
};

struct WorstCaseResult {
  Round worst_decision_round = 0;
  long runs = 0;
  std::optional<RunSchedule> schedule;
  bool all_ok = true;  ///< consensus + model held in every examined run

  /// Monoid merge (see SyncRunExplorer::Stats::merge): strictly-greater
  /// replacement keeps the earliest worst schedule at any chunking.
  void merge(const WorstCaseResult& other);
};

/// Maximizes the global decision round over the delivery patterns of the
/// given crash slots (synchronous runs).  Joint-exhaustive when the pattern
/// space is within `exhaustive_limit`, otherwise seeded random sampling with
/// `samples` draws.  Used to find the worst synchronous runs of the
/// coordinator/leader baselines (2t+2 for Hurfin-Raynal, k+2f+2 for AMR)
/// where the simple canned schedules are not adversarial enough.
///
/// The pattern space is swept in chunks on the campaign engine.  Sampled
/// mode pre-draws the sample list from Rng(seed) before partitioning, so
/// the examined patterns — and therefore the result — do not depend on the
/// job count and match the sequential sweep draw-for-draw.
WorstCaseResult worst_case_over_deliveries(
    SystemConfig config, const AlgorithmFactory& factory,
    const std::vector<Value>& proposals, const std::vector<CrashSlot>& slots,
    long exhaustive_limit = 1 << 16, long samples = 4096,
    std::uint64_t seed = 1, Round max_rounds = 64,
    CampaignOptions campaign = {});

}  // namespace indulgence
