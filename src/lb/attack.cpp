#include "lb/attack.hpp"

#include <atomic>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/at2.hpp"

namespace indulgence {

std::optional<std::string> agreement_or_validity_violation(
    const RunResult& r, const AlgorithmInstances&) {
  if (!r.agreement) {
    std::ostringstream os;
    os << "uniform agreement violated: decisions";
    for (const DecisionRecord& d : r.trace.decisions()) {
      os << " p" << d.pid << "=" << d.value << "@r" << d.round;
    }
    return os.str();
  }
  if (!r.validity) {
    return "validity violated: a decided value was never proposed";
  }
  return std::nullopt;
}

std::optional<std::string> elimination_violation(
    const RunResult&, const AlgorithmInstances& instances) {
  std::set<Value> non_bottom;
  for (const auto& instance : instances) {
    const auto* p = dynamic_cast<const At2*>(instance.get());
    if (p && p->new_estimate() && *p->new_estimate() != kBottom) {
      non_bottom.insert(*p->new_estimate());
    }
  }
  if (non_bottom.size() >= 2) {
    std::ostringstream os;
    os << "elimination property violated: distinct non-BOTTOM new estimates";
    for (Value v : non_bottom) os << " " << v;
    return os.str();
  }
  return std::nullopt;
}

AttackResult search_violation(SystemConfig config,
                              const AlgorithmFactory& factory,
                              AttackOptions options,
                              const ViolationPredicate& violated) {
  config.validate();
  AttackResult result;
  const Round action_rounds =
      options.action_rounds > 0 ? options.action_rounds : config.t + 2;

  std::vector<std::vector<Value>> proposal_vectors = options.proposal_vectors;
  if (proposal_vectors.empty()) {
    // Distinct proposals in id order plus the reverse: the reverse places
    // the minimum at the highest id, which several attacks need (a victim
    // whose value survives only at itself must not be first in sender
    // order, or deterministic tie-breaking hides the disagreement).
    proposal_vectors.push_back(distinct_proposals(config.n));
    std::vector<Value> reversed(config.n);
    for (int i = 0; i < config.n; ++i) reversed[i] = config.n - 1 - i;
    proposal_vectors.push_back(std::move(reversed));
  }

  KernelOptions kernel_options;
  kernel_options.model = Model::ES;
  kernel_options.max_rounds = options.max_rounds;

  const int jobs = options.campaign.resolved_jobs();
  const long chunk_size = options.campaign.resolved_chunk(1);
  constexpr long kNoWinner = std::numeric_limits<long>::max();

  // Shared across the proposal vectors so the budget is global, exactly as
  // in the sequential search.  `tried` includes the speculative work of
  // chunks that end up cancelled; the REPORTED count sums per-chunk tallies
  // only up to the winning chunk, which is the same at every job count.
  std::atomic<long> tried{0};
  long reported = 0;

  for (const std::vector<Value>& proposals : proposal_vectors) {
    // Partition by first-round action.  Early-stop propagation: `winner`
    // holds the lowest chunk index that found a violation; a chunk aborts
    // as soon as a LOWER-indexed chunk has won (its own subtree can no
    // longer contain the canonical counterexample), while lower chunks run
    // on, so the reported run is deterministic at any job count.
    const std::vector<AdversaryAction> first = enumerate_actions(
        config, ProcessSet::all(config.n), 0, /*allow_delays=*/true,
        options.delay_gap);
    std::atomic<long> winner{kNoWinner};
    std::mutex winner_mutex;
    const long total = static_cast<long>(first.size());
    const long chunks = total <= 0 ? 0 : (total + chunk_size - 1) / chunk_size;
    std::vector<long> chunk_tried(static_cast<std::size_t>(chunks), 0);

    parallel_for_chunked(
        total, chunk_size, jobs,
        [&](long chunk_index, long begin, long end) {
          RunContext ctx(config, kernel_options);
          for (long i = begin; i < end; ++i) {
            for_each_action_sequence_from(
                config, {first[static_cast<std::size_t>(i)]}, action_rounds,
                /*allow_delays=*/true, options.delay_gap,
                [&](const std::vector<AdversaryAction>& actions) {
                  if (winner.load(std::memory_order_relaxed) < chunk_index) {
                    return false;  // a lower subtree already won
                  }
                  if (tried.load(std::memory_order_relaxed) >=
                      options.max_runs) {
                    return false;  // budget exhausted
                  }
                  tried.fetch_add(1, std::memory_order_relaxed);
                  ++chunk_tried[static_cast<std::size_t>(chunk_index)];
                  const RunSchedule schedule =
                      schedule_from_actions(config, actions);
                  const RunResult& r =
                      ctx.run(factory, proposals, schedule);
                  if (!r.validation.ok()) {
                    // Impossible by construction; never blame the algorithm
                    // for a run outside the model.
                    return true;
                  }
                  if (auto what = violated(r, ctx.algorithms())) {
                    std::lock_guard<std::mutex> lock(winner_mutex);
                    if (chunk_index < winner.load()) {
                      winner.store(chunk_index);
                      result.violation_found = true;
                      result.description = *what;
                      result.schedule = schedule;
                      result.actions = actions;
                      result.proposals = proposals;
                      result.trace_dump = r.trace.to_string();
                    }
                    return false;
                  }
                  return true;
                });
            if (winner.load(std::memory_order_relaxed) <= chunk_index ||
                tried.load(std::memory_order_relaxed) >= options.max_runs) {
              break;
            }
          }
        });
    const long winning = winner.load();
    for (long c = 0; c < chunks; ++c) {
      if (c > winning) break;  // cancelled chunks' speculative work
      reported += chunk_tried[static_cast<std::size_t>(c)];
    }
    if (result.violation_found) break;
  }
  result.runs_tried = reported;
  return result;
}

AttackResult search_agreement_violation(SystemConfig config,
                                        const AlgorithmFactory& factory,
                                        AttackOptions options) {
  return search_violation(config, factory, options,
                          agreement_or_validity_violation);
}

Fig1Runs fig1_construction(SystemConfig config,
                           const std::vector<ProcessId>& serial_prefix_victims,
                           ProcessId p1_prime, ProcessId pi1_prime,
                           Round decision_horizon) {
  config.validate();
  const Round t = config.t;
  if (static_cast<Round>(serial_prefix_victims.size()) != t - 1) {
    throw std::invalid_argument(
        "fig1_construction: need exactly t-1 serial prefix victims");
  }
  if (p1_prime == pi1_prime) {
    throw std::invalid_argument("fig1_construction: p'_1 == p'_{i+1}");
  }
  for (ProcessId v : serial_prefix_victims) {
    if (v == p1_prime || v == pi1_prime) {
      throw std::invalid_argument(
          "fig1_construction: prefix victims must differ from the pivots");
    }
  }
  const Round k_prime = decision_horizon;  // the paper's k' (a2's decision)

  auto prefix = [&](ScheduleBuilder& b) {
    // The (t-1)-round serial prefix r_{t-1}: one crash per round, silent.
    for (Round k = 1; k <= t - 1; ++k) {
      b.crash(serial_prefix_victims[k - 1], k, /*before_send=*/true);
    }
  };

  Fig1Runs runs{RunSchedule{config}, RunSchedule{config}, RunSchedule{config},
                RunSchedule{config}, RunSchedule{config}};

  {  // s1: p'_1 crashes in round t; p'_{i+1} misses its final message.
    ScheduleBuilder b(config);
    prefix(b);
    b.crash(p1_prime, t);
    b.lose(p1_prime, pi1_prime, t);
    runs.s1 = b.build();
  }
  {  // s0: p'_1 crashes in round t; final message reaches everyone.
    ScheduleBuilder b(config);
    prefix(b);
    b.crash(p1_prime, t);
    runs.s0 = b.build();
  }
  {  // a2: p'_1 alive but falsely suspected by p'_{i+1} in round t (message
     // delayed to t+2); p'_{i+1} crashes silently at t+1.
    ScheduleBuilder b(config);
    prefix(b);
    b.delay(p1_prime, pi1_prime, t, t + 2);
    b.crash(pi1_prime, t + 1, /*before_send=*/true);
    b.gst(t + 2);
    runs.a2 = b.build();
  }
  {  // a1: rounds <= t as a2; at t+1 everybody falsely suspects p'_{i+1}
     // (its messages delayed past a2's decision round k') and p'_{i+1}
     // falsely suspects p'_1; p'_{i+1} crashes silently at t+2.
    ScheduleBuilder b(config);
    prefix(b);
    b.delay(p1_prime, pi1_prime, t, t + 2);
    for (ProcessId r = 0; r < config.n; ++r) {
      if (r != pi1_prime) b.delay(pi1_prime, r, t + 1, k_prime + 1);
    }
    b.delay(p1_prime, pi1_prime, t + 1, k_prime + 1);
    b.crash(pi1_prime, t + 2, /*before_send=*/true);
    b.gst(k_prime + 1);
    runs.a1 = b.build();
  }
  {  // a0: the s0-side twin — p'_{i+1} DOES get p'_1's round-t message;
     // round t+1 is identical to a1's.
    ScheduleBuilder b(config);
    prefix(b);
    for (ProcessId r = 0; r < config.n; ++r) {
      if (r != pi1_prime) b.delay(pi1_prime, r, t + 1, k_prime + 1);
    }
    b.delay(p1_prime, pi1_prime, t + 1, k_prime + 1);
    b.crash(pi1_prime, t + 2, /*before_send=*/true);
    b.gst(k_prime + 1);
    runs.a0 = b.build();
  }
  return runs;
}

}  // namespace indulgence
