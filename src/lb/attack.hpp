// Proposition 1 made executable.
//
// Two tools:
//
// 1. search_agreement_violation — a bounded exhaustive (or seeded random)
//    search over serial ES adversaries (explorer.hpp actions, Delay
//    included) hunting for a SINGLE run in which a candidate algorithm
//    violates uniform agreement or validity.  Fed a "too fast" algorithm —
//    one that globally decides by round t + 1 in synchronous runs — the
//    search realizes the adversary Proposition 1 proves must exist.  Fed
//    A_{t+2}, it comes back empty-handed (within its bounds), which is the
//    tightness half of the story.
//
// 2. fig1_construction — the five concrete runs of the Claim 5.1 proof
//    (s1, s0, a2, a1, a0; paper Fig. 1) as explicit schedules for a given
//    (n, t, p'_1, p'_{i+1}), used by benches/examples to print the
//    indistinguishability structure round by round.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lb/explorer.hpp"
#include "sim/harness.hpp"

namespace indulgence {

struct AttackOptions {
  /// Rounds in which the adversary may act (>= t + 1 to cover Phase 1 plus
  /// the decision round of a t+1-fast algorithm).
  Round action_rounds = 0;  ///< 0 means t + 2

  /// Lateness of delayed messages.
  Round delay_gap = 2;

  /// Cap on complete runs examined.
  long max_runs = 5'000'000;

  /// Cap on simulated rounds per run (lets the underlying C finish).
  Round max_rounds = 64;

  /// Also try every proposal assignment from this list (empty: distinct
  /// proposals only).
  std::vector<std::vector<Value>> proposal_vectors;

  /// Campaign engine knobs for the search (jobs, chunking).  The adversary
  /// space is partitioned by first-round action; a violation found in one
  /// chunk cancels every HIGHER-indexed chunk, while lower-indexed chunks
  /// run on, so the reported counterexample is the one in the lowest
  /// subtree — deterministic at any job count (modulo the run budget).
  CampaignOptions campaign;
};

struct AttackResult {
  bool violation_found = false;

  /// Complete runs examined, counting only the chunks up to and including
  /// the winning one (cancelled chunks' speculative work is excluded), so
  /// the count is the same at every job count.  Only the `max_runs` budget
  /// is enforced against the racy global tally; a budget-truncated parallel
  /// search may therefore report slightly fewer runs than the sequential
  /// one.
  long runs_tried = 0;
  std::string description;                  ///< which property broke and how
  std::optional<RunSchedule> schedule;      ///< the violating adversary
  std::vector<AdversaryAction> actions;     ///< same, as actions
  std::optional<std::vector<Value>> proposals;
  std::string trace_dump;                   ///< violating run, human-readable
};

/// What counts as a violation: examines a finished (model-valid) run and
/// returns a description iff the property of interest is broken.
using ViolationPredicate = std::function<std::optional<std::string>(
    const RunResult&, const AlgorithmInstances&)>;

/// Uniform agreement or validity broken (the consensus-safety predicate).
std::optional<std::string> agreement_or_validity_violation(
    const RunResult& result, const AlgorithmInstances& instances);

/// Lemma 6 broken: two distinct non-BOTTOM new estimates at round t+2
/// (requires the algorithm instances to be A_{t+2} variants).
std::optional<std::string> elimination_violation(
    const RunResult& result, const AlgorithmInstances& instances);

/// Exhaustive bounded search for an ES run on which `violated` reports a
/// violation.  Every examined run is first checked against the model
/// validator; invalid runs (impossible by construction) are skipped, so a
/// reported violation is always a genuine ES counterexample.
AttackResult search_violation(SystemConfig config,
                              const AlgorithmFactory& factory,
                              AttackOptions options,
                              const ViolationPredicate& violated);

/// search_violation with the consensus-safety predicate.
AttackResult search_agreement_violation(SystemConfig config,
                                        const AlgorithmFactory& factory,
                                        AttackOptions options = {});

/// The five runs of the paper's Claim 5.1 construction, parameterized on the
/// two pivotal processes.  `serial_prefix_victims[i]` crashes in round i+1
/// (the bivalent serial prefix r_{t-1}); round t is the pivotal round of
/// p1_prime; rounds t+1.. play out per the construction of each run.
struct Fig1Runs {
  RunSchedule s1;  ///< serial: p'_1 crashes in round t, 1-valent side
  RunSchedule s0;  ///< serial: p'_1 crashes in round t, 0-valent side
  RunSchedule a2;  ///< async: p'_1 falsely suspected, p'_{i+1} dies at t+1
  RunSchedule a1;  ///< async: p'_{i+1} falsely suspected at t+1, dies at t+2
  RunSchedule a0;  ///< async twin of a1 grown from the s0 side
};

Fig1Runs fig1_construction(SystemConfig config,
                           const std::vector<ProcessId>& serial_prefix_victims,
                           ProcessId p1_prime, ProcessId pi1_prime,
                           Round decision_horizon);

}  // namespace indulgence
