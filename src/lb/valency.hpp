// Valency analysis of serial partial runs (paper Sect. 2, Lemmas 2-5).
//
// A k-round serial partial run is 0-/1-valent when every serial extension
// decides 0/1, bivalent when both values are reachable.  For small (n, t)
// we can compute valency exactly by enumerating all serial extensions.
//
// What the experiments check (E3):
//   * bivalent initial configurations exist (Lemma 3 — true for any
//     algorithm);
//   * bivalent (t-1)-round serial partial runs exist (Lemma 4);
//   * for an algorithm that decides at round t+1 in synchronous runs
//     (FloodSet), every t-round serial partial run is univalent (Lemma 2's
//     mechanism);
//   * for A_{t+2} (decides at t+2), bivalency survives one round longer —
//     t-round bivalent serial partial runs EXIST, and every (t+1)-round one
//     is univalent.  That extra round of uncertainty is the structural face
//     of the paper's "price of indulgence".

#pragma once

#include <set>
#include <vector>

#include "lb/explorer.hpp"

namespace indulgence {

class ValencyAnalyzer {
 public:
  /// `extension_rounds`: serial extensions inject crashes for this many
  /// rounds past the prefix (decisions must land within `max_rounds`).
  ValencyAnalyzer(SystemConfig config, AlgorithmFactory factory,
                  Round extension_rounds, Round max_rounds = 64);

  /// Decision values reachable by serial synchronous extensions of
  /// `prefix` under the given proposals.  Empty set means some extension
  /// failed to terminate (reported via last_all_terminated()).
  std::set<Value> valency(const std::vector<Value>& proposals,
                          const std::vector<AdversaryAction>& prefix);

  bool last_all_terminated() const { return last_all_terminated_; }

  struct Profile {
    std::vector<long> prefixes_checked;   ///< index = prefix length
    std::vector<long> bivalent_prefixes;  ///< index = prefix length
    bool all_terminated = true;
  };

  /// Counts bivalent serial partial runs of every length 0..max_prefix_len
  /// for fixed proposals.
  Profile profile(const std::vector<Value>& proposals, Round max_prefix_len);

  /// Lemma 3: is some initial configuration over binary proposals bivalent?
  /// Checks all 2^n assignments; returns how many are bivalent.
  int count_bivalent_binary_initial_configs();

 private:
  SystemConfig config_;
  AlgorithmFactory factory_;
  Round extension_rounds_;
  Round max_rounds_;
  bool last_all_terminated_ = true;
};

}  // namespace indulgence
