// A mergeable log-bucketed latency histogram in the HDR style: values are
// binned into octaves split into 2^kPrecisionBits linear sub-buckets, so
// relative quantile error is bounded by 2^-kPrecisionBits (~3.1%) at every
// magnitude while the whole table stays a small fixed array of counters.
//
// Like the campaign stats of the parallel sweep engine, the histogram is a
// commutative monoid under merge(): a fleet of clients records privately
// and the campaign folds the per-client histograms in a fixed order, so
// the merged quantiles are identical at any INDULGENCE_JOBS setting.

#pragma once

#include <cstdint>
#include <vector>

namespace indulgence::client {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear buckets per octave, i.e. a
  /// recorded value is off by at most 1/32 of its magnitude.
  static constexpr int kPrecisionBits = 5;
  static constexpr int kSubBuckets = 1 << kPrecisionBits;
  /// One linear group for values < kSubBuckets plus one group per octave
  /// above it covers the full non-negative 63-bit range.
  static constexpr int kBucketCount = (64 - kPrecisionBits) * kSubBuckets;

  LatencyHistogram() : counts_(kBucketCount, 0) {}

  /// Records one value (microseconds in this repo; negatives clamp to 0).
  void record(std::int64_t value);

  /// Monoid merge: counters add, min/max fold.  Commutative, associative,
  /// identity = default-constructed histogram.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in (0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest recorded value — so the reported
  /// quantile never understates the true one by more than the bucket
  /// width.  Returns 0 on an empty histogram.
  std::int64_t quantile(double q) const;

  /// Bucket index of a value, and the value range [floor, ceil] a bucket
  /// covers (exposed for the accuracy tests).
  static int bucket_index(std::int64_t value);
  static std::int64_t bucket_floor(int index);
  static std::int64_t bucket_ceil(int index);

  /// Exact state equality — the determinism tests' oracle.
  bool operator==(const LatencyHistogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           min_ == other.min_ && max_ == other.max_ &&
           counts_ == other.counts_;
  }
  bool operator!=(const LatencyHistogram& other) const {
    return !(*this == other);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;  ///< exact for < 2^64 total microseconds
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace indulgence::client
