#include "client/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/sharded_runtime.hpp"

namespace indulgence::client {

namespace {

void cas_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void cas_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ClientFleet::ClientFleet(const WorkloadOptions& options, int num_groups,
                         int replicas_per_group)
    : options_(options), num_groups_(num_groups), replicas_(replicas_per_group) {
  if (options_.num_clients < 1 ||
      options_.num_clients > (1 << kClientBits)) {
    throw std::invalid_argument("ClientFleet: bad num_clients");
  }
  if (num_groups_ < 1 || replicas_ < 1) {
    throw std::invalid_argument("ClientFleet: bad target shape");
  }
  if (options_.measure_commands < 1 || options_.warmup_commands < 0) {
    throw std::invalid_argument("ClientFleet: bad command counts");
  }
  if (options_.mode == LoopMode::Closed && options_.outstanding < 1) {
    throw std::invalid_argument("ClientFleet: outstanding must be >= 1");
  }
  if (options_.mode != LoopMode::Closed &&
      (options_.pending_window < 1 || !(options_.target_rate_per_sec > 0))) {
    throw std::invalid_argument("ClientFleet: bad open-loop options");
  }
  if (options_.sample_period.count() <= 0) {
    throw std::invalid_argument("ClientFleet: bad sample_period");
  }
  ack_target_ = options_.warmup_commands + options_.measure_commands;

  queues_.resize(static_cast<std::size_t>(num_groups_) *
                 static_cast<std::size_t>(replicas_));
  for (auto& q : queues_) q = std::make_unique<IngestQueue>();

  const double per_client =
      options_.target_rate_per_sec / options_.num_clients;
  for (int i = 0; i < options_.num_clients; ++i) {
    auto c = std::make_unique<Client>();
    c->id = i;
    if (options_.mode != LoopMode::Closed) {
      ArrivalOptions ao;
      if (options_.mode == LoopMode::OpenBursty) {
        ao.kind = ArrivalKind::Bursty;
        ao.on_period = options_.burst_on;
        ao.off_period = options_.burst_off;
        // The ON rate is scaled so the long-run mean meets the target.
        const double on = static_cast<double>(ao.on_period.count());
        const double off = static_cast<double>(ao.off_period.count());
        ao.rate_per_sec = per_client * (on + off) / on;
      } else {
        ao.kind = ArrivalKind::Poisson;
        ao.rate_per_sec = per_client;
      }
      c->arrivals = std::make_unique<ArrivalProcess>(
          ao, options_.seed, static_cast<std::uint64_t>(i));
    }
    clients_.push_back(std::move(c));
  }

  const auto nbins = static_cast<std::size_t>(
      options_.deadline.count() / options_.sample_period.count() + 2);
  bins_ = std::vector<std::atomic<long>>(nbins);
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
}

ClientFleet::~ClientFleet() { finish(); }

std::uint64_t ClientFleet::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

GroupId ClientFleet::group_of(Value command) const {
  if (num_groups_ <= 1) return 0;
  return group_for_key(static_cast<std::uint64_t>(command), num_groups_);
}

ProcessId ClientFleet::home_replica_of(Value command) const {
  // A different mix than group_for_key so group and home replica are
  // independent partitions of the command space.
  return static_cast<ProcessId>(
      SplitMix64(static_cast<std::uint64_t>(command) ^
                 0xc0ffee5eedULL)
          .next() %
      static_cast<std::uint64_t>(replicas_));
}

RsmCommandSource ClientFleet::source_for(GroupId group, ProcessId pid) {
  IngestQueue* q = queues_[static_cast<std::size_t>(group) *
                               static_cast<std::size_t>(replicas_) +
                           static_cast<std::size_t>(pid)]
                       .get();
  return [q]() { return q->pull(); };
}

RsmCommitCallback ClientFleet::commit_for(GroupId, ProcessId) {
  return [this](int, Value value, Round) { on_commit(value); };
}

DonePredicate ClientFleet::done_predicate() {
  return [this](const RoundAlgorithm&) {
    if (target_reached()) return true;
    if (std::chrono::steady_clock::now() >= deadline_at_) {
      hit_deadline_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
}

void ClientFleet::note_arrival(std::uint64_t at_us) {
  cas_min(first_arrival_us_, at_us);
  cas_max(last_arrival_us_, at_us);
}

void ClientFleet::submit_locked(Client& c) {
  const long seq = static_cast<long>(c.states.size());
  c.states.push_back(CommandState::Pending);
  const Value cmd = encode_command(c.id, seq);
  const std::uint64_t at = now_us();
  c.outstanding.emplace(seq, at);
  total_submitted_.fetch_add(1, std::memory_order_relaxed);
  note_arrival(at);
  queues_[static_cast<std::size_t>(group_of(cmd)) *
              static_cast<std::size_t>(replicas_) +
          static_cast<std::size_t>(home_replica_of(cmd))]
      ->push(cmd);
}

void ClientFleet::shed_locked(Client& c) {
  c.states.push_back(CommandState::Shed);
  ++c.shed;
  note_arrival(now_us());
}

void ClientFleet::abandon_expired_locked(Client& c) {
  const std::uint64_t now = now_us();
  const auto timeout =
      static_cast<std::uint64_t>(options_.ack_timeout.count());
  for (auto it = c.outstanding.begin(); it != c.outstanding.end();) {
    if (now - it->second > timeout) {
      c.states[static_cast<std::size_t>(it->first)] = CommandState::Abandoned;
      ++c.abandoned;
      it = c.outstanding.erase(it);
    } else {
      ++it;
    }
  }
}

void ClientFleet::closed_loop(Client& c) {
  const long k = options_.outstanding;
  const bool timed = options_.ack_timeout.count() > 0;
  std::unique_lock<std::mutex> lock(c.mutex);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (timed) abandon_expired_locked(c);
    if (static_cast<long>(c.outstanding.size()) < k) {
      submit_locked(c);
      continue;
    }
    const auto space = [&] {
      return stop_.load(std::memory_order_relaxed) ||
             static_cast<long>(c.outstanding.size()) < k;
    };
    if (timed) {
      // Wake at least every half-timeout so abandons are detected.
      c.cv.wait_for(lock,
                    std::min(options_.ack_timeout / 2,
                             std::chrono::microseconds{100'000}),
                    space);
    } else {
      c.cv.wait(lock, space);
    }
  }
}

void ClientFleet::open_loop(Client& c) {
  const bool timed = options_.ack_timeout.count() > 0;
  std::uint64_t next = c.arrivals->next_arrival_us();
  std::unique_lock<std::mutex> lock(c.mutex);
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto when = epoch_ + std::chrono::microseconds(next);
    if (std::chrono::steady_clock::now() < when) {
      c.cv.wait_until(lock, when, [&] {
        return stop_.load(std::memory_order_relaxed);
      });
      if (stop_.load(std::memory_order_relaxed)) break;
      if (std::chrono::steady_clock::now() < when) continue;  // spurious
    }
    // At or past the arrival instant: submit (catching up without sleeping
    // when behind schedule keeps the offered rate on target), or shed when
    // the pending window is full — the open loop never blocks on acks.
    if (timed) abandon_expired_locked(c);
    if (static_cast<long>(c.outstanding.size()) >= options_.pending_window) {
      shed_locked(c);
    } else {
      submit_locked(c);
    }
    next = c.arrivals->next_arrival_us();
  }
}

void ClientFleet::on_commit(Value value) {
  if (is_rsm_noop(value)) return;  // empty-slot filler, not a client command
  const auto id = decode_command(value, options_.num_clients);
  if (!id) {
    phantom_.store(true, std::memory_order_relaxed);
    return;
  }
  Client& c = *clients_[static_cast<std::size_t>(id->client)];
  std::lock_guard<std::mutex> lock(c.mutex);
  if (id->seq < 0 || id->seq >= static_cast<long>(c.states.size())) {
    phantom_.store(true, std::memory_order_relaxed);
    return;
  }
  CommandState& state = c.states[static_cast<std::size_t>(id->seq)];
  switch (state) {
    case CommandState::Pending: {
      const std::uint64_t now = now_us();
      const auto it = c.outstanding.find(id->seq);
      const std::uint64_t submitted_at =
          it != c.outstanding.end() ? it->second : now;
      if (it != c.outstanding.end()) c.outstanding.erase(it);
      state = CommandState::Acked;
      const long index = total_acked_.fetch_add(1, std::memory_order_relaxed);
      const auto latency = static_cast<std::int64_t>(now - submitted_at);
      if (index < options_.warmup_commands) {
        c.warmup_hist.record(latency);
      } else {
        c.measure_hist.record(latency);
        cas_min(first_measured_us_, now);
        cas_max(last_measured_us_, now);
      }
      const auto bin = std::min(
          static_cast<std::size_t>(
              now / static_cast<std::uint64_t>(
                        options_.sample_period.count())),
          bins_.size() - 1);
      bins_[bin].fetch_add(1, std::memory_order_relaxed);
      c.cv.notify_all();
      break;
    }
    case CommandState::Acked:
    case CommandState::AckedLate:
      // Another replica learning the same slot — expected, not a duplicate
      // commit.  (True duplicates are caught by the log-scan oracle.)
      break;
    case CommandState::Abandoned:
      state = CommandState::AckedLate;
      ++c.late_acks;
      break;
    case CommandState::Shed:
      // A shed arrival was never pushed anywhere; its commit would mean
      // the system invented a command.
      phantom_.store(true, std::memory_order_relaxed);
      break;
  }
}

void ClientFleet::start(std::chrono::steady_clock::time_point epoch) {
  if (started_.exchange(true)) {
    throw std::logic_error("ClientFleet: started twice");
  }
  epoch_ = epoch;
  deadline_at_ = epoch + options_.deadline;
  for (auto& c : clients_) {
    Client* raw = c.get();
    c->thread = std::thread([this, raw] {
      if (options_.mode == LoopMode::Closed) {
        closed_loop(*raw);
      } else {
        open_loop(*raw);
      }
    });
  }
}

void ClientFleet::finish() {
  if (!started_.load() || finished_) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& c : clients_) {
    std::lock_guard<std::mutex> lock(c->mutex);
    c->cv.notify_all();
  }
  for (auto& c : clients_) {
    if (c->thread.joinable()) c->thread.join();
  }
  finished_ = true;
}

FleetCounters ClientFleet::counters() const {
  FleetCounters out;
  for (const auto& c : clients_) {
    out.shed += c->shed;
    out.late_acks += c->late_acks;
    out.abandoned += c->abandoned - c->late_acks;  // late ones moved out
    for (const CommandState state : c->states) {
      if (state != CommandState::Shed) ++out.submitted;
      switch (state) {
        case CommandState::Acked:
          ++out.acked;
          break;
        case CommandState::Pending:
          ++out.pending_at_stop;
          break;
        default:
          break;
      }
    }
  }
  out.warmup_acked = std::min<long>(out.acked, options_.warmup_commands);
  out.measured_acked = out.acked - out.warmup_acked;
  return out;
}

LatencyHistogram ClientFleet::merged_measure_histogram() const {
  LatencyHistogram merged;
  for (const auto& c : clients_) merged.merge(c->measure_hist);
  return merged;
}

LatencyHistogram ClientFleet::merged_warmup_histogram() const {
  LatencyHistogram merged;
  for (const auto& c : clients_) merged.merge(c->warmup_hist);
  return merged;
}

std::vector<long> ClientFleet::throughput_samples() const {
  std::size_t last = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].load(std::memory_order_relaxed) != 0) last = i + 1;
  }
  std::vector<long> out;
  out.reserve(last);
  for (std::size_t i = 0; i < last; ++i) {
    out.push_back(bins_[i].load(std::memory_order_relaxed));
  }
  return out;
}

double ClientFleet::measured_span_seconds() const {
  const std::uint64_t first = first_measured_us_.load();
  const std::uint64_t last = last_measured_us_.load();
  return last > first ? static_cast<double>(last - first) / 1e6 : 0.0;
}

double ClientFleet::offered_span_seconds() const {
  const std::uint64_t first = first_arrival_us_.load();
  const std::uint64_t last = last_arrival_us_.load();
  return last > first ? static_cast<double>(last - first) / 1e6 : 0.0;
}

long ClientFleet::total_offered() const {
  long shed = 0;
  for (const auto& c : clients_) shed += c->shed;
  return total_submitted_.load() + shed;
}

CommandState ClientFleet::state_of(int client, long seq) const {
  return clients_[static_cast<std::size_t>(client)]
      ->states[static_cast<std::size_t>(seq)];
}

long ClientFleet::seqs_of(int client) const {
  return static_cast<long>(
      clients_[static_cast<std::size_t>(client)]->states.size());
}

}  // namespace indulgence::client
