// Deterministic open-loop arrival processes for the client workload layer.
//
// Each client owns one ArrivalProcess seeded from (seed, client index) via
// Rng::for_stream, so a fleet's arrival times are a pure function of the
// WorkloadOptions — independent across clients, bit-identical across runs
// and thread counts, and replayable in isolation.
//
// Two shapes:
//   * Poisson — exponential inter-arrival gaps at `rate_per_sec`: the
//     memoryless open-loop baseline every SMR latency study starts from.
//   * Bursty — an on/off modulated Poisson: gaps are drawn at
//     `rate_per_sec` but the clock only advances through the ON windows of
//     an on/off cycle, so traffic arrives in bursts at the ON rate with a
//     long-run mean of rate * on / (on + off).

#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace indulgence::client {

enum class ArrivalKind { Poisson, Bursty };

struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::Poisson;
  double rate_per_sec = 1000.0;  ///< Poisson rate; Bursty: rate inside ON
  std::chrono::microseconds on_period{20'000};   ///< Bursty ON window
  std::chrono::microseconds off_period{20'000};  ///< Bursty OFF window
};

class ArrivalProcess {
 public:
  /// Deterministic per-client stream: (seed, stream) fully determine every
  /// arrival time.
  ArrivalProcess(const ArrivalOptions& options, std::uint64_t seed,
                 std::uint64_t stream);

  /// The next arrival instant as an offset (µs) from the process epoch;
  /// non-decreasing across calls.
  std::uint64_t next_arrival_us();

  /// Long-run mean arrival rate (commands/s) the process converges to.
  double mean_rate_per_sec() const;

 private:
  double exponential_gap_us();

  ArrivalOptions options_;
  Rng rng_;
  double clock_us_ = 0.0;  ///< double accumulation avoids rounding drift
};

}  // namespace indulgence::client
