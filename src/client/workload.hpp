// The client workload fleet: concurrent closed-loop / open-loop command
// submitters layered over the RSM's pull-based ingest API.
//
// Shape of a campaign:
//
//   client threads --push--> per-(group, replica) IngestQueue
//     --RsmCommandSource pull--> RsmReplica slots (driver threads)
//     --RsmCommitCallback--> fleet ack path (latency histogram, samples)
//
// Loop modes:
//   * Closed — each client keeps exactly `outstanding` commands in flight
//     and submits a replacement on every ack: the classic
//     fixed-concurrency throughput probe.
//   * OpenPoisson / OpenBursty — arrivals follow a deterministic seeded
//     ArrivalProcess regardless of acks (the latency-under-offered-load
//     probe).  Backpressure is explicit: when a client's pending window is
//     full, the arrival is SHED and counted, never queued — an open-loop
//     client must not silently turn into a closed-loop one.
//
// Exactly-once by construction: every command is encoded with its owning
// (client, seq), pushed to exactly one home replica's queue, and proposed
// by at most one live slot at a time (the RSM's inflight set); a command
// that loses its slot retries on the same replica.  Ack timeouts only
// ABANDON a command in the client's accounting (frees the window slot,
// counted, late commits tracked separately) — they never resubmit, because
// a second proposer is exactly what could commit a command twice.
//
// After the run, check_ingest_oracle (campaign.hpp) re-derives the ledger
// from the committed logs themselves and cross-checks this accounting.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/arrivals.hpp"
#include "client/histogram.hpp"
#include "common/types.hpp"
#include "net/options.hpp"
#include "rsm/rsm.hpp"

namespace indulgence::client {

enum class LoopMode { Closed, OpenPoisson, OpenBursty };

struct WorkloadOptions {
  LoopMode mode = LoopMode::Closed;
  int num_clients = 8;
  int outstanding = 4;  ///< closed loop: commands in flight per client

  // Open loop --------------------------------------------------------------
  double target_rate_per_sec = 2000.0;  ///< aggregate offered rate
  int pending_window = 256;  ///< per-client in-flight cap before shedding
  std::chrono::microseconds burst_on{20'000};   ///< OpenBursty ON window
  std::chrono::microseconds burst_off{20'000};  ///< OpenBursty OFF window

  // Campaign controller ----------------------------------------------------
  long warmup_commands = 0;       ///< acks before the measure window opens
  long measure_commands = 1000;   ///< measured acks to collect
  /// 0 = wait forever; > 0 = a command unacked this long is abandoned in
  /// the client's books (never resubmitted — see the header comment).
  std::chrono::microseconds ack_timeout{0};
  /// Hard wall cap: the fleet declares itself done at this offset even if
  /// the ack target was not reached, so every campaign shuts down through
  /// the armed-stop path and still merges + validates its trace.
  std::chrono::microseconds deadline{60'000'000};
  std::chrono::microseconds sample_period{250'000};  ///< throughput bins

  std::uint64_t seed = 1;
};

// --- command codec ---------------------------------------------------------
// cmd = (seq + 1) << 16 | client.  The slot algorithms commit the MINIMUM
// proposed estimate, so the sequence number must dominate the ordering:
// encoding the client id in the high bits would starve high-id clients
// under sustained load, while seq-major encoding interleaves clients into
// an approximately global FIFO.  All encodings are >= 2^16, far from
// kNoOpCommand / kBottom and the max-side no-op sentinels.

inline constexpr int kClientBits = 16;

inline Value encode_command(int client, long seq) {
  return (static_cast<Value>(seq + 1) << kClientBits) |
         static_cast<Value>(client);
}

struct CommandId {
  int client = 0;
  long seq = 0;
};

inline std::optional<CommandId> decode_command(Value v, int num_clients) {
  if (v < (Value{1} << kClientBits)) return std::nullopt;
  const int client = static_cast<int>(v & ((Value{1} << kClientBits) - 1));
  if (client >= num_clients) return std::nullopt;
  return CommandId{client, static_cast<long>(v >> kClientBits) - 1};
}

/// What the fleet's books say happened to one (client, seq).
enum class CommandState : std::uint8_t {
  Pending = 0,    ///< submitted, no ack yet
  Acked = 1,      ///< commit observed while waiting
  Abandoned = 2,  ///< ack_timeout expired; window slot freed
  AckedLate = 3,  ///< committed after being abandoned
  Shed = 4,       ///< open-loop arrival dropped at a full window
};

/// One home replica's command feed: clients push, the replica's driver
/// thread pulls through its RsmCommandSource.
class IngestQueue {
 public:
  void push(Value v) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(v);
    ++pushed_;
  }

  std::optional<Value> pull() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    const Value v = queue_.front();
    queue_.pop_front();
    return v;
  }

  long pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }

 private:
  mutable std::mutex mutex_;
  std::deque<Value> queue_;
  long pushed_ = 0;
};

/// Fleet-level accounting, all derived from per-client books at finish().
struct FleetCounters {
  long submitted = 0;
  long acked = 0;  ///< on-time acks (excludes late)
  long shed = 0;
  long abandoned = 0;  ///< still unacked at stop (late acks moved out)
  long late_acks = 0;
  long pending_at_stop = 0;
  long warmup_acked = 0;
  long measured_acked = 0;
};

class ClientFleet {
 public:
  /// `num_groups` x `replicas_per_group` home queues; single-group targets
  /// pass num_groups = 1.
  ClientFleet(const WorkloadOptions& options, int num_groups,
              int replicas_per_group);
  ~ClientFleet();

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  // --- RSM plumbing --------------------------------------------------------

  RsmCommandSource source_for(GroupId group, ProcessId pid);
  RsmCommitCallback commit_for(GroupId group, ProcessId pid);

  /// Armed-stop predicate for the runtimes: ack target reached, or the
  /// wall deadline passed (hit_deadline() tells which).
  DonePredicate done_predicate();

  /// Home routing, exposed so the oracle can re-derive it from a committed
  /// value alone.
  GroupId group_of(Value command) const;
  ProcessId home_replica_of(Value command) const;

  // --- lifecycle -----------------------------------------------------------

  /// Launches the client threads against `epoch` (the runtimes' clock
  /// base, delivered through their start hooks).
  void start(std::chrono::steady_clock::time_point epoch);

  /// Stops and joins the client threads; all post-run accessors below are
  /// valid (and single-threaded) afterwards.
  void finish();

  // --- post-run ------------------------------------------------------------

  const WorkloadOptions& options() const { return options_; }
  int num_groups() const { return num_groups_; }
  int replicas_per_group() const { return replicas_; }

  bool target_reached() const {
    return total_acked_.load(std::memory_order_relaxed) >= ack_target_;
  }
  bool hit_deadline() const { return hit_deadline_.load(); }
  /// A commit callback saw a command the books say was never submitted
  /// (shed, unknown seq, or undecodable non-noop) — oracle-fatal.
  bool saw_phantom_commit() const { return phantom_.load(); }

  FleetCounters counters() const;
  LatencyHistogram merged_measure_histogram() const;
  LatencyHistogram merged_warmup_histogram() const;
  /// Acks per sample_period bin, trimmed to the last non-empty bin.
  std::vector<long> throughput_samples() const;
  /// Span of the measure window (first to last measured ack), seconds.
  double measured_span_seconds() const;
  /// Span of the offered load (first to last arrival incl. shed), seconds.
  double offered_span_seconds() const;
  long total_offered() const;  ///< submitted + shed arrivals

  CommandState state_of(int client, long seq) const;
  long seqs_of(int client) const;

 private:
  struct Client {
    int id = 0;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<long, std::uint64_t> outstanding;  ///< seq -> µs
    std::vector<CommandState> states;  ///< index = seq
    long shed = 0;
    long abandoned = 0;
    long late_acks = 0;
    LatencyHistogram warmup_hist;
    LatencyHistogram measure_hist;
    std::unique_ptr<ArrivalProcess> arrivals;
  };

  std::uint64_t now_us() const;
  void submit_locked(Client& c);
  void shed_locked(Client& c);
  void abandon_expired_locked(Client& c);
  void note_arrival(std::uint64_t at_us);
  void closed_loop(Client& c);
  void open_loop(Client& c);
  void on_commit(Value value);

  WorkloadOptions options_;
  int num_groups_ = 1;
  int replicas_ = 3;
  long ack_target_ = 0;

  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<IngestQueue>> queues_;  ///< [group * R + pid]

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> hit_deadline_{false};
  std::atomic<bool> phantom_{false};
  bool finished_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  std::chrono::steady_clock::time_point deadline_at_{
      std::chrono::steady_clock::time_point::max()};

  std::atomic<long> total_submitted_{0};
  std::atomic<long> total_acked_{0};
  std::atomic<std::uint64_t> first_measured_us_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> last_measured_us_{0};
  std::atomic<std::uint64_t> first_arrival_us_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> last_arrival_us_{0};
  std::vector<std::atomic<long>> bins_;
};

}  // namespace indulgence::client
