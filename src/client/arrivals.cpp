#include "client/arrivals.hpp"

#include <cmath>
#include <stdexcept>

namespace indulgence::client {

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options,
                               std::uint64_t seed, std::uint64_t stream)
    : options_(options), rng_(Rng::for_stream(seed, stream)) {
  if (!(options_.rate_per_sec > 0.0)) {
    throw std::invalid_argument("ArrivalProcess: rate must be positive");
  }
  if (options_.kind == ArrivalKind::Bursty &&
      (options_.on_period.count() <= 0 || options_.off_period.count() < 0)) {
    throw std::invalid_argument("ArrivalProcess: bad burst periods");
  }
}

double ArrivalProcess::exponential_gap_us() {
  // Inverse-transform sampling; next_double() < 1 keeps the log finite.
  const double u = rng_.next_double();
  return -std::log(1.0 - u) / options_.rate_per_sec * 1e6;
}

std::uint64_t ArrivalProcess::next_arrival_us() {
  double gap = exponential_gap_us();
  if (options_.kind == ArrivalKind::Poisson) {
    clock_us_ += gap;
    return static_cast<std::uint64_t>(clock_us_);
  }
  // Bursty: the gap consumes ON time only; OFF windows are skipped whole,
  // so arrivals cluster inside ON windows at the full rate.
  const double on = static_cast<double>(options_.on_period.count());
  const double off = static_cast<double>(options_.off_period.count());
  const double cycle = on + off;
  double pos = std::fmod(clock_us_, cycle);
  if (pos >= on) {  // parked in an OFF window: snap to the next ON start
    clock_us_ += cycle - pos;
    pos = 0.0;
  }
  while (gap > 0.0) {
    const double available = on - pos;
    if (gap <= available) {
      clock_us_ += gap;
      gap = 0.0;
    } else {
      gap -= available;
      clock_us_ += available + off;
      pos = 0.0;
    }
  }
  return static_cast<std::uint64_t>(clock_us_);
}

double ArrivalProcess::mean_rate_per_sec() const {
  if (options_.kind == ArrivalKind::Poisson) return options_.rate_per_sec;
  const double on = static_cast<double>(options_.on_period.count());
  const double off = static_cast<double>(options_.off_period.count());
  return options_.rate_per_sec * on / (on + off);
}

}  // namespace indulgence::client
