// The campaign controller: wires a ClientFleet to one of the three RSM
// runtimes (in-process run_live, socket-transport run_live, multi-group
// run_sharded), drives it to an ack target through warmup + measure
// windows, and — after every run, successful or not — still merges the
// process logs and re-checks them with the unchanged Validator, exactly
// like the fixed-queue benches.
//
// On top of trace validation sits the end-to-end linearizable-ingest
// oracle: the committed logs, read back across replicas, must be exactly
// the set of acknowledged client commands — no loss (every acked command
// appears), no duplication (no command in two slots), nothing invented
// (every non-noop committed value decodes to a submitted command), and on
// sharded targets every command sits in its key-hash group.

#pragma once

#include <vector>

#include "client/workload.hpp"
#include "net/runtime.hpp"
#include "net/sharded_runtime.hpp"
#include "rsm/rsm.hpp"

namespace indulgence::client {

enum class CampaignTarget { InProcess, Socket, Sharded };

struct CampaignConfig {
  CampaignTarget target = CampaignTarget::InProcess;
  SystemConfig config{3, 1};  ///< per-group (n, t)
  LiveOptions live;           ///< pacing, chaos, max_rounds, seed
  AlgorithmFactory slot_factory;  ///< per-slot consensus (required)

  /// Socket / Sharded targets.
  SocketAddress::Kind socket_kind = SocketAddress::Kind::Unix;
  SocketTransportOptions socket;

  /// Sharded target only.
  int num_groups = 8;
  int num_nodes = 3;

  /// slot_window / slot_burst / decide_retention are honored; num_slots is
  /// DERIVED from live.max_rounds (one burst per window step up to the
  /// round cap, plus slack) so the log cannot exhaust before the cap.
  RsmOptions rsm;
};

/// The committed-log ledger cross-checked against the fleet's books.
struct OracleReport {
  bool agreement = true;       ///< no two replicas disagree on a slot
  bool no_duplicates = true;   ///< no command committed in two slots
  bool acked_all_committed = true;   ///< every ack is backed by the log
  bool committed_all_submitted = true;  ///< the log invented nothing
  bool routed_correctly = true;      ///< sharded: slot's group owns the key
  bool no_phantoms = true;     ///< no callback for an unknown command
  long committed_commands = 0;  ///< distinct client commands in the logs
  long noop_commits = 0;        ///< committed empty-slot sentinels
  long late_committed = 0;      ///< committed after the client abandoned

  bool ok() const {
    return agreement && no_duplicates && acked_all_committed &&
           committed_all_submitted && routed_correctly && no_phantoms;
  }
};

struct CampaignReport {
  FleetCounters counts;
  LatencyHistogram latency;         ///< client-to-commit, measure window
  LatencyHistogram warmup_latency;  ///< warmup window
  std::vector<long> samples;        ///< acks per sample_period bin
  double measured_seconds = 0;      ///< measure-window span
  double offered_seconds = 0;       ///< arrival span (incl. shed)
  double commands_per_sec = 0;      ///< measured acks / measured span
  double offered_rate = 0;          ///< arrivals per second (open-loop gate)
  bool reached_target = false;
  bool hit_deadline = false;
  bool run_valid = false;   ///< every merged trace passed the Validator
  bool terminated = false;  ///< armed-stop shutdown (vs round-cap abort)
  long rounds = 0;          ///< rounds executed (max over groups)
  OracleReport oracle;
};

/// Re-derives the ledger from the committed logs themselves.
/// `replicas_by_group[g]` holds group g's replicas (null entries allowed —
/// e.g. a non-RSM payload slot); call after fleet.finish().
OracleReport check_ingest_oracle(
    const ClientFleet& fleet,
    const std::vector<std::vector<const RsmReplica*>>& replicas_by_group);

/// Runs one full campaign and reports.  Throws on invalid configuration;
/// a campaign that misses its ack target still reports (reached_target
/// false) with its trace validated.
CampaignReport run_campaign(const CampaignConfig& config,
                            const WorkloadOptions& workload);

}  // namespace indulgence::client
