#include "client/campaign.hpp"

#include <algorithm>
#include <stdexcept>

namespace indulgence::client {

namespace {

/// One burst of slots per window step up to the round cap, plus slack, so
/// the log outlives any run the round cap admits.
RsmOptions derive_rsm(const CampaignConfig& config) {
  RsmOptions rsm = config.rsm;
  const Round window =
      rsm.slot_window > 0 ? rsm.slot_window : config.config.t + 3;
  const long steps = config.live.max_rounds / window + 2;
  rsm.num_slots = static_cast<int>(
      std::min<long>(steps * rsm.slot_burst, 100'000'000));
  return rsm;
}

CampaignReport finalize(
    ClientFleet& fleet, bool run_valid, bool terminated, long rounds,
    const std::vector<std::vector<const RsmReplica*>>& replicas_by_group) {
  fleet.finish();
  CampaignReport report;
  report.counts = fleet.counters();
  report.latency = fleet.merged_measure_histogram();
  report.warmup_latency = fleet.merged_warmup_histogram();
  report.samples = fleet.throughput_samples();
  report.measured_seconds = fleet.measured_span_seconds();
  report.offered_seconds = fleet.offered_span_seconds();
  report.commands_per_sec =
      report.measured_seconds > 0
          ? static_cast<double>(report.counts.measured_acked) /
                report.measured_seconds
          : 0.0;
  report.offered_rate =
      report.offered_seconds > 0
          ? static_cast<double>(fleet.total_offered()) /
                report.offered_seconds
          : 0.0;
  report.reached_target = fleet.target_reached();
  report.hit_deadline = fleet.hit_deadline();
  report.run_valid = run_valid;
  report.terminated = terminated;
  report.rounds = rounds;
  report.oracle = check_ingest_oracle(fleet, replicas_by_group);
  return report;
}

CampaignReport run_live_campaign(const CampaignConfig& config,
                                 const WorkloadOptions& workload) {
  ClientFleet fleet(workload, 1, config.config.n);
  const RsmOptions rsm = derive_rsm(config);
  const AlgorithmFactory factory = rsm_ingest_factory(
      config.slot_factory,
      [&fleet](ProcessId pid) { return fleet.source_for(0, pid); },
      [&fleet](ProcessId pid) { return fleet.commit_for(0, pid); }, rsm);

  LiveRuntime runtime(config.config, config.live);
  if (config.target == CampaignTarget::Socket) {
    runtime.use_socket_transport(config.socket_kind, config.socket);
  }
  runtime.set_done_predicate(fleet.done_predicate());
  runtime.set_start_hook(
      [&fleet](std::chrono::steady_clock::time_point epoch) {
        fleet.start(epoch);
      });

  const RunResult result = runtime.run(
      factory, std::vector<Value>(static_cast<std::size_t>(config.config.n),
                                  kNoOpCommand));
  fleet.finish();

  std::vector<const RsmReplica*> replicas;
  for (const auto& algorithm : runtime.algorithms()) {
    replicas.push_back(dynamic_cast<const RsmReplica*>(algorithm.get()));
  }
  return finalize(fleet, result.validation.ok(), result.trace.terminated(),
                  result.trace.rounds_executed(), {replicas});
}

CampaignReport run_sharded_campaign(const CampaignConfig& config,
                                    const WorkloadOptions& workload) {
  ClientFleet fleet(workload, config.num_groups, config.config.n);
  const RsmOptions rsm = derive_rsm(config);

  ShardedOptions sharded;
  sharded.num_nodes = config.num_nodes;
  sharded.num_groups = config.num_groups;
  sharded.config = config.config;
  sharded.live = config.live;
  sharded.kind = config.socket_kind;
  sharded.socket = config.socket;
  sharded.done = fleet.done_predicate();
  sharded.on_start = [&fleet](std::chrono::steady_clock::time_point epoch) {
    fleet.start(epoch);
  };

  const auto factory_for = sharded_rsm_ingest_factory(
      config.slot_factory,
      [&fleet](GroupId group, ProcessId pid) {
        return fleet.source_for(group, pid);
      },
      [&fleet](GroupId group, ProcessId pid) {
        return fleet.commit_for(group, pid);
      },
      rsm);
  const auto proposals_for = [&config](GroupId) {
    return std::vector<Value>(static_cast<std::size_t>(config.config.n),
                              kNoOpCommand);
  };

  const ShardedResult result =
      run_sharded(sharded, factory_for, proposals_for);
  fleet.finish();

  std::vector<std::vector<const RsmReplica*>> by_group(
      static_cast<std::size_t>(config.num_groups));
  bool terminated = true;
  long rounds = 0;
  for (const auto& [group, outcome] : result.groups) {
    auto& replicas = by_group[static_cast<std::size_t>(group)];
    for (const auto& algorithm : outcome.algorithms) {
      replicas.push_back(dynamic_cast<const RsmReplica*>(algorithm.get()));
    }
    terminated = terminated && outcome.result.trace.terminated();
    rounds = std::max<long>(rounds, outcome.result.trace.rounds_executed());
  }
  return finalize(fleet, result.all_valid(), terminated, rounds, by_group);
}

}  // namespace

OracleReport check_ingest_oracle(
    const ClientFleet& fleet,
    const std::vector<std::vector<const RsmReplica*>>& replicas_by_group) {
  OracleReport oracle;
  oracle.no_phantoms = !fleet.saw_phantom_commit();
  const int num_clients = fleet.options().num_clients;

  // Occurrence ledger: how often each (client, seq) appears in the logs.
  std::vector<std::vector<std::uint8_t>> occurrences(
      static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    occurrences[static_cast<std::size_t>(c)].assign(
        static_cast<std::size_t>(fleet.seqs_of(c)), 0);
  }

  for (std::size_t g = 0; g < replicas_by_group.size(); ++g) {
    const auto& replicas = replicas_by_group[g];
    std::size_t slots = 0;
    for (const RsmReplica* replica : replicas) {
      if (replica) slots = std::max(slots, replica->log().size());
    }
    for (std::size_t s = 0; s < slots; ++s) {
      // Union the slot across replicas; any disagreement is fatal.
      std::optional<Value> committed;
      for (const RsmReplica* replica : replicas) {
        if (!replica || s >= replica->log().size()) continue;
        const auto& entry = replica->log()[s];
        if (!entry) continue;
        if (!committed) {
          committed = *entry;
        } else if (*committed != *entry) {
          oracle.agreement = false;
        }
      }
      if (!committed) continue;
      if (is_rsm_noop(*committed)) {
        ++oracle.noop_commits;
        continue;
      }
      const auto id = decode_command(*committed, num_clients);
      if (!id || id->seq < 0 || id->seq >= fleet.seqs_of(id->client) ||
          fleet.state_of(id->client, id->seq) == CommandState::Shed) {
        oracle.committed_all_submitted = false;  // the log invented this
        continue;
      }
      if (fleet.num_groups() > 1 &&
          fleet.group_of(*committed) != static_cast<GroupId>(g)) {
        oracle.routed_correctly = false;
      }
      auto& count = occurrences[static_cast<std::size_t>(id->client)]
                               [static_cast<std::size_t>(id->seq)];
      if (count < 255) ++count;
      if (count == 1) {
        ++oracle.committed_commands;
      } else {
        oracle.no_duplicates = false;
      }
    }
  }

  for (int c = 0; c < num_clients; ++c) {
    const long seqs = fleet.seqs_of(c);
    for (long seq = 0; seq < seqs; ++seq) {
      const CommandState state = fleet.state_of(c, seq);
      const std::uint8_t seen =
          occurrences[static_cast<std::size_t>(c)]
                     [static_cast<std::size_t>(seq)];
      if (state == CommandState::Acked && seen == 0) {
        oracle.acked_all_committed = false;  // acked but lost
      }
      if (state == CommandState::AckedLate) {
        ++oracle.late_committed;
        if (seen == 0) oracle.acked_all_committed = false;
      }
    }
  }
  return oracle;
}

CampaignReport run_campaign(const CampaignConfig& config,
                            const WorkloadOptions& workload) {
  if (!config.slot_factory) {
    throw std::invalid_argument("run_campaign: slot_factory is required");
  }
  if (config.target == CampaignTarget::Sharded) {
    return run_sharded_campaign(config, workload);
  }
  return run_live_campaign(config, workload);
}

}  // namespace indulgence::client
