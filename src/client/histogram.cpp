#include "client/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace indulgence::client {

int LatencyHistogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - __builtin_clzll(static_cast<unsigned long long>(value));
  const int octave = msb - kPrecisionBits + 1;
  const int sub = static_cast<int>((static_cast<std::uint64_t>(value) >>
                                    (msb - kPrecisionBits)) -
                                   kSubBuckets);
  return octave * kSubBuckets + sub;
}

std::int64_t LatencyHistogram::bucket_floor(int index) {
  if (index < kSubBuckets) return index;
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return static_cast<std::int64_t>(kSubBuckets + sub) << (octave - 1);
}

std::int64_t LatencyHistogram::bucket_ceil(int index) {
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return bucket_floor(index + 1) - 1;
}

void LatencyHistogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  ++counts_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<std::uint64_t>(value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBucketCount; ++i) {
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  }
}

std::int64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(count_))),
      1, count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[static_cast<std::size_t>(i)];
    if (cumulative >= rank) return std::min(bucket_ceil(i), max_);
  }
  return max_;
}

}  // namespace indulgence::client
