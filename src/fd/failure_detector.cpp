#include "fd/failure_detector.hpp"

namespace indulgence {

FailureDetectorFactory receipt_detector_factory() {
  return [](ProcessId self, const SystemConfig& config) {
    return std::make_unique<SimulatedReceiptDetector>(self, config);
  };
}

FailureDetectorFactory scripted_detector_factory(
    std::map<Round, ProcessSet> extra) {
  return [extra = std::move(extra)](ProcessId self,
                                    const SystemConfig& config) {
    return std::make_unique<ScriptedFailureDetector>(self, config, extra);
  };
}

}  // namespace indulgence
