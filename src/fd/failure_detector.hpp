// Failure detectors for the round-based models.
//
// Sect. 4 of the paper shows how to simulate the unreliable failure
// detectors <>P / <>S from ES: at the receive phase of round k, the
// simulated output becomes exactly the set of processes from which no
// round-k message was received in round k.  SimulatedReceiptDetector
// implements that construction.
//
// ScriptedFailureDetector layers *additional* false suspicions on top (per
// round, per process), which lets tests exercise the <>S-based algorithm
// A_<>S under detector mistakes that are not explainable by message
// timing alone.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace indulgence {

/// Local failure-detector module of one process.
class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// Fed by the algorithm at the receive phase of round k with the set of
  /// processes whose round-k message arrived in round k.
  virtual void observe_round(Round k, const ProcessSet& heard) = 0;

  /// Current suspect set (valid after observe_round(k) for round k).
  virtual ProcessSet suspects() const = 0;

  virtual std::string name() const = 0;
};

/// The paper's Sect. 4 simulation of <>P / <>S from ES: suspect exactly the
/// processes not heard from in the latest round.  In a synchronous run this
/// detector makes no false suspicion (it is "perfect"); before GST it may
/// suspect slow processes, which is precisely the indulgence scenario.
class SimulatedReceiptDetector final : public FailureDetector {
 public:
  SimulatedReceiptDetector(ProcessId self, const SystemConfig& config)
      : self_(self), n_(config.n) {}

  void observe_round(Round, const ProcessSet& heard) override {
    suspects_ = ProcessSet::all(n_) - heard;
    suspects_.erase(self_);  // a process never suspects itself
  }

  ProcessSet suspects() const override { return suspects_; }

  std::string name() const override { return "receipt-simulated <>P"; }

 private:
  ProcessId self_;
  int n_;
  ProcessSet suspects_;
};

/// Receipt simulation plus scripted extra (false) suspicions: in round k the
/// detector additionally suspects `extra[k]` even if those processes were
/// heard from.  Used to stress A_<>S beyond what message timing can induce.
class ScriptedFailureDetector final : public FailureDetector {
 public:
  ScriptedFailureDetector(ProcessId self, const SystemConfig& config,
                          std::map<Round, ProcessSet> extra)
      : self_(self), n_(config.n), extra_(std::move(extra)) {}

  void observe_round(Round k, const ProcessSet& heard) override {
    suspects_ = ProcessSet::all(n_) - heard;
    if (auto it = extra_.find(k); it != extra_.end()) suspects_ |= it->second;
    suspects_.erase(self_);
  }

  ProcessSet suspects() const override { return suspects_; }

  std::string name() const override { return "scripted <>S"; }

 private:
  ProcessId self_;
  int n_;
  std::map<Round, ProcessSet> extra_;
  ProcessSet suspects_;
};

/// Creates the detector module for one process.
using FailureDetectorFactory = std::function<std::unique_ptr<FailureDetector>(
    ProcessId self, const SystemConfig& config)>;

/// Default factory: the Sect. 4 receipt simulation.
FailureDetectorFactory receipt_detector_factory();

/// Factory injecting the same scripted false suspicions at every process.
FailureDetectorFactory scripted_detector_factory(
    std::map<Round, ProcessSet> extra);

}  // namespace indulgence
