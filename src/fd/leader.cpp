// leader.hpp is header-only; this translation unit anchors the target.
#include "fd/leader.hpp"
