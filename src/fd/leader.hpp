// The eventual leader primitive of footnote 10.
//
// "(1) every process sends messages to all processes in every round, (2) pi
// initially sets its variable leader to p1, and (3) on receiving messages of
// a round k in ES, pi sets its variable leader to the process with the
// minimum process id, among the senders of messages received by pi in round
// k."
//
// After GST every process hears from exactly the live processes, so all
// leader variables converge to the smallest live id: an Omega-style
// eventual leader, used by the AMR leader-based baseline.

#pragma once

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace indulgence {

class EventualLeader {
 public:
  /// Initially the leader is p1 (our process 0).
  EventualLeader() = default;

  /// Fed at the receive phase with the senders heard from this round.
  void observe_round(const ProcessSet& heard) {
    if (!heard.empty()) leader_ = heard.min();
  }

  ProcessId leader() const { return leader_; }

 private:
  ProcessId leader_ = 0;
};

}  // namespace indulgence
