#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, regenerate every
# experiment table (E1..E10, X1..X4), and leave the outputs in
# test_output.txt / bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "################ $(basename "$b") ################"
      "$b"
      echo "---- exit: $? ----"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "Reproduction complete: see test_output.txt and bench_output.txt."
