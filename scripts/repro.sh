#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, regenerate every
# experiment table (E1..E10, X1..X9 — including the live-runtime RSM service
# over real threads, real sockets, the sharded multi-group fabric, the
# client workload campaigns, the round-synchronizer comparison, and the
# Byzantine-adversary grid), and leave the outputs in test_output.txt /
# bench_output.txt at the repository root.
#
# INDULGENCE_JOBS controls the campaign engine's worker count (default: all
# cores).  The tables are bit-identical at any setting; INDULGENCE_JOBS=1 is
# the sequential reference mode.  Campaign timing / runs-per-second lines are
# emitted on stderr and captured separately in bench_timing.txt so
# bench_output.txt stays byte-stable across job counts and machines.
set -euo pipefail
cd "$(dirname "$0")/.."

# Ninja for fresh trees; an existing build/ keeps whatever generator it was
# configured with (CMake refuses to switch generators in place).
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_timing.txt
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "################ $(basename "$b") ################"
      "$b" 2>> bench_timing.txt
      echo "---- exit: $? ----"
      echo
    fi
  done
} | tee bench_output.txt

# The fuzz smoke: every target must match the paper's verdict from the
# fixed default seed, and every checked-in repro must still reproduce.
./build/fuzz/fuzz_consensus --corpus tests/corpus 2>> bench_timing.txt
./build/fuzz/fuzz_consensus 2>> bench_timing.txt

# The Byzantine fuzz smoke: budgeted liars draw the five lie classes;
# A_{t+2}^auth must survive every draw, its ablations must break, and the
# crash-only algorithms are scored as vulnerable (the corpus replay above
# already re-judged the shrunk byz-*.sched seeds).
./build/fuzz/fuzz_consensus --byz 1 --n 4 --t 1 --seed 3 --budget 300 \
    2>> bench_timing.txt

# The live fuzz smoke: randomized LiveOptions over real threads — every
# lossy draw must be flagged invalid, no target may produce a finding, and
# the stdout table is bit-identical per seed.
./build/fuzz/fuzz_consensus --live --seed 1 --budget 8 2>> bench_timing.txt

# The synchronizer fuzz smoke: the same live oracles under the pacemaker
# and fast-path round-close policies, with random transient corruption of
# the synchronizer soft state injected per draw (X8 ran the bench grid in
# the loop above; this exercises the randomized path).
./build/fuzz/fuzz_consensus --live --sync pacemaker --seed 2 --budget 6 \
    2>> bench_timing.txt
./build/fuzz/fuzz_consensus --live --sync faststep --seed 3 --budget 6 \
    2>> bench_timing.txt

# The socket fuzz smoke: randomized runs over Unix-domain sockets with
# seeded wire chaos; every run must merge into a validator-clean trace and
# match the lockstep kernel replay.
./build/fuzz/fuzz_consensus --socket --seed 1 --budget 6 2>> bench_timing.txt

# The sharded fuzz smoke: several independent groups of each target per
# draw over one group-multiplexed fabric; every group's merged trace is
# judged by the same oracle, so demux bleed shows up as a finding.
./build/fuzz/fuzz_consensus --socket --groups 4 --seed 1 --budget 3 \
    2>> bench_timing.txt

# The live-runtime smoke: the RSM demo runs the replicated log as a real
# threaded service and re-validates every merged trace (X5 ran in the bench
# loop above; this exercises the example entry point too).
./build/examples/live_rsm_demo 2>> bench_timing.txt

# The multi-process smoke: one OS process per replica over Unix-domain
# sockets, per-process trace logs shipped back and merged; the chaos
# variant (seeded resets / stalls / short writes before "GST") must not
# change the verdict.
./build/examples/socket_rsm_demo 2>> bench_timing.txt
./build/examples/socket_rsm_demo --chaos 2>> bench_timing.txt

# The sharded smoke: 8 consensus groups hash-partitioned across 4 OS
# processes on one group-multiplexed fabric; every per-group merged trace
# must pass the unchanged validator and every group's committed log must
# agree across its members, chaos included.
./build/examples/sharded_rsm_demo --groups 8 2>> bench_timing.txt
./build/examples/sharded_rsm_demo --groups 8 --chaos 2>> bench_timing.txt

# The client-campaign smoke: closed- and open-loop fleets over the
# in-process, socket, and sharded runtimes (X7 ran its full grid plus the
# million-command campaign in the bench loop above; this exercises the
# example entry point).  Afterwards, every persisted BENCH_*.json artifact
# must keep its key schema, baselines included.
./build/examples/client_rsm_demo 2>> bench_timing.txt
scripts/check_bench_keys.sh .

echo "Reproduction complete: see test_output.txt and bench_output.txt" \
     "(campaign timing: bench_timing.txt)."
