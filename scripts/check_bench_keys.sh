#!/usr/bin/env bash
# Guard the schema of persisted bench artifacts.
#
# Every BENCH_*.json written by the bench binaries has a checked-in key
# manifest under bench/expected_keys/<name>.keys (one sorted key name per
# line).  CI runs the benches and then this script: a key that vanishes —
# e.g. a refactor silently dropping "flush_syscalls" from
# BENCH_x5_socket.json — fails the build instead of silently breaking the
# before/after comparisons that later PRs rely on.
#
# Usage: check_bench_keys.sh <dir-with-BENCH-json> [repo-root]
#
# New keys are allowed (they show up as a diff line starting with '>', which
# we report but tolerate); missing keys ('<' lines) are fatal.  Regenerate a
# manifest after an intentional schema change with:
#   scripts/check_bench_keys.sh --regen <dir-with-BENCH-json>
set -euo pipefail

regen=0
if [[ "${1:-}" == "--regen" ]]; then
  regen=1
  shift
fi

artifact_dir="${1:?usage: check_bench_keys.sh [--regen] <dir> [repo-root]}"
repo_root="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
expected_dir="${repo_root}/bench/expected_keys"

extract_keys() {
  # All JSON object keys, one per line, sorted and deduplicated.  The
  # artifacts are written by our own JsonWriter (no string values containing
  # '":'), so a grep-level scan is exact enough.
  grep -o '"[^"]*"[[:space:]]*:' "$1" | sed 's/"\([^"]*\)".*/\1/' | sort -u
}

shopt -s nullglob
artifacts=("${artifact_dir}"/BENCH_*.json)
if [[ ${#artifacts[@]} -eq 0 ]]; then
  echo "check_bench_keys: no BENCH_*.json under ${artifact_dir}" >&2
  exit 1
fi

if [[ ${regen} -eq 1 ]]; then
  mkdir -p "${expected_dir}"
  for artifact in "${artifacts[@]}"; do
    name="$(basename "${artifact}" .json)"
    extract_keys "${artifact}" > "${expected_dir}/${name}.keys"
    echo "regenerated ${expected_dir}/${name}.keys"
  done
  exit 0
fi

status=0
seen_any=0
for artifact in "${artifacts[@]}"; do
  name="$(basename "${artifact}" .json)"
  manifest="${expected_dir}/${name}.keys"
  if [[ ! -f "${manifest}" ]]; then
    echo "check_bench_keys: ${name}: no manifest at ${manifest}" >&2
    echo "  (new artifact? run: scripts/check_bench_keys.sh --regen ${artifact_dir})" >&2
    status=1
    continue
  fi
  seen_any=1
  actual="$(extract_keys "${artifact}")"
  missing="$(comm -23 "${manifest}" <(printf '%s\n' "${actual}"))"
  added="$(comm -13 "${manifest}" <(printf '%s\n' "${actual}"))"
  if [[ -n "${missing}" ]]; then
    echo "check_bench_keys: ${name}: keys VANISHED from the artifact:" >&2
    printf '  - %s\n' ${missing} >&2
    status=1
  fi
  if [[ -n "${added}" ]]; then
    echo "check_bench_keys: ${name}: new keys (ok, consider --regen):"
    printf '  + %s\n' ${added}
  fi
  if [[ -z "${missing}" ]]; then
    echo "check_bench_keys: ${name}: ok ($(printf '%s\n' "${actual}" | wc -l) keys)"
  fi
done

# Every manifest must have a matching artifact: a bench that stops emitting
# its JSON entirely is the worst kind of vanishing key.
for manifest in "${expected_dir}"/*.keys; do
  name="$(basename "${manifest}" .keys)"
  if [[ ! -f "${artifact_dir}/${name}.json" ]]; then
    echo "check_bench_keys: ${name}.json was never produced under ${artifact_dir}" >&2
    status=1
  fi
done

# The checked-in baselines (bench/baselines/BENCH_<name>.pr<N>.json) are what
# later PRs diff against; every baseline key must still exist in the current
# manifest, or the before/after comparison silently reads fallback zeros.
for baseline in "${repo_root}"/bench/baselines/BENCH_*.pr*.json; do
  [[ -f "${baseline}" ]] || continue
  name="$(basename "${baseline}" .json)"
  name="${name%.pr*}"
  manifest="${expected_dir}/${name}.keys"
  if [[ ! -f "${manifest}" ]]; then
    echo "check_bench_keys: baseline $(basename "${baseline}") has no manifest ${name}.keys" >&2
    status=1
    continue
  fi
  stale="$(comm -23 <(extract_keys "${baseline}") "${manifest}")"
  if [[ -n "${stale}" ]]; then
    echo "check_bench_keys: baseline $(basename "${baseline}") keys no longer in the ${name} schema:" >&2
    printf '  - %s\n' ${stale} >&2
    status=1
  else
    echo "check_bench_keys: baseline $(basename "${baseline}") ok"
  fi
done

if [[ ${seen_any} -eq 0 && ${status} -eq 0 ]]; then
  echo "check_bench_keys: nothing checked" >&2
  exit 1
fi
exit ${status}
