file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_rsm_throughput.dir/bench_x2_rsm_throughput.cpp.o"
  "CMakeFiles/bench_x2_rsm_throughput.dir/bench_x2_rsm_throughput.cpp.o.d"
  "bench_x2_rsm_throughput"
  "bench_x2_rsm_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_rsm_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
