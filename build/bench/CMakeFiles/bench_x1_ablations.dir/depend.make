# Empty dependencies file for bench_x1_ablations.
# This may be replaced when dependencies are built.
