file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_ablations.dir/bench_x1_ablations.cpp.o"
  "CMakeFiles/bench_x1_ablations.dir/bench_x1_ablations.cpp.o.d"
  "bench_x1_ablations"
  "bench_x1_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
