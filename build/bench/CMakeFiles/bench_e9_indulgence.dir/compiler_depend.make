# Empty compiler generated dependencies file for bench_e9_indulgence.
# This may be replaced when dependencies are built.
