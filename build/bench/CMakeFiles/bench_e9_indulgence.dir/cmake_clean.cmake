file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_indulgence.dir/bench_e9_indulgence.cpp.o"
  "CMakeFiles/bench_e9_indulgence.dir/bench_e9_indulgence.cpp.o.d"
  "bench_e9_indulgence"
  "bench_e9_indulgence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_indulgence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
