# Empty compiler generated dependencies file for bench_e1_price_of_indulgence.
# This may be replaced when dependencies are built.
