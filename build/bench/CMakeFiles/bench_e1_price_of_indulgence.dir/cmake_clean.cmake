file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_price_of_indulgence.dir/bench_e1_price_of_indulgence.cpp.o"
  "CMakeFiles/bench_e1_price_of_indulgence.dir/bench_e1_price_of_indulgence.cpp.o.d"
  "bench_e1_price_of_indulgence"
  "bench_e1_price_of_indulgence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_price_of_indulgence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
