
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e8_eventual_decision.cpp" "bench/CMakeFiles/bench_e8_eventual_decision.dir/bench_e8_eventual_decision.cpp.o" "gcc" "bench/CMakeFiles/bench_e8_eventual_decision.dir/bench_e8_eventual_decision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/indulgence_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_rsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
