file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_eventual_decision.dir/bench_e8_eventual_decision.cpp.o"
  "CMakeFiles/bench_e8_eventual_decision.dir/bench_e8_eventual_decision.cpp.o.d"
  "bench_e8_eventual_decision"
  "bench_e8_eventual_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_eventual_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
