# Empty dependencies file for bench_e8_eventual_decision.
# This may be replaced when dependencies are built.
