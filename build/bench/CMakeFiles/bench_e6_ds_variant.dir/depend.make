# Empty dependencies file for bench_e6_ds_variant.
# This may be replaced when dependencies are built.
