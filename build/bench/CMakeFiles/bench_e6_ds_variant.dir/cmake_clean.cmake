file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_ds_variant.dir/bench_e6_ds_variant.cpp.o"
  "CMakeFiles/bench_e6_ds_variant.dir/bench_e6_ds_variant.cpp.o.d"
  "bench_e6_ds_variant"
  "bench_e6_ds_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_ds_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
