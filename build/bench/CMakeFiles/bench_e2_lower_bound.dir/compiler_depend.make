# Empty compiler generated dependencies file for bench_e2_lower_bound.
# This may be replaced when dependencies are built.
