# Empty dependencies file for bench_e3_valency.
# This may be replaced when dependencies are built.
