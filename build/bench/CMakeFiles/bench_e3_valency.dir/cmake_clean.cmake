file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_valency.dir/bench_e3_valency.cpp.o"
  "CMakeFiles/bench_e3_valency.dir/bench_e3_valency.cpp.o.d"
  "bench_e3_valency"
  "bench_e3_valency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_valency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
