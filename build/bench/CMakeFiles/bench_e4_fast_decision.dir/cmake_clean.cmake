file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_fast_decision.dir/bench_e4_fast_decision.cpp.o"
  "CMakeFiles/bench_e4_fast_decision.dir/bench_e4_fast_decision.cpp.o.d"
  "bench_e4_fast_decision"
  "bench_e4_fast_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_fast_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
