# Empty dependencies file for bench_e4_fast_decision.
# This may be replaced when dependencies are built.
