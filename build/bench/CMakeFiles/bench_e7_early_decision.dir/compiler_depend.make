# Empty compiler generated dependencies file for bench_e7_early_decision.
# This may be replaced when dependencies are built.
