# Empty compiler generated dependencies file for indulgence_core.
# This may be replaced when dependencies are built.
