file(REMOVE_RECURSE
  "libindulgence_core.a"
)
