file(REMOVE_RECURSE
  "CMakeFiles/indulgence_core.dir/core/af2.cpp.o"
  "CMakeFiles/indulgence_core.dir/core/af2.cpp.o.d"
  "CMakeFiles/indulgence_core.dir/core/at2.cpp.o"
  "CMakeFiles/indulgence_core.dir/core/at2.cpp.o.d"
  "CMakeFiles/indulgence_core.dir/core/at2_ds.cpp.o"
  "CMakeFiles/indulgence_core.dir/core/at2_ds.cpp.o.d"
  "libindulgence_core.a"
  "libindulgence_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
