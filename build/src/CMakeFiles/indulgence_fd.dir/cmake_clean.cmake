file(REMOVE_RECURSE
  "CMakeFiles/indulgence_fd.dir/fd/failure_detector.cpp.o"
  "CMakeFiles/indulgence_fd.dir/fd/failure_detector.cpp.o.d"
  "CMakeFiles/indulgence_fd.dir/fd/leader.cpp.o"
  "CMakeFiles/indulgence_fd.dir/fd/leader.cpp.o.d"
  "libindulgence_fd.a"
  "libindulgence_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
