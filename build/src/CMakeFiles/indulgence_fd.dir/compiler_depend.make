# Empty compiler generated dependencies file for indulgence_fd.
# This may be replaced when dependencies are built.
