file(REMOVE_RECURSE
  "libindulgence_fd.a"
)
