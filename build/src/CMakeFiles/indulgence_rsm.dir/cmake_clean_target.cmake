file(REMOVE_RECURSE
  "libindulgence_rsm.a"
)
