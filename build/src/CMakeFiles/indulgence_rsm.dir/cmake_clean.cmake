file(REMOVE_RECURSE
  "CMakeFiles/indulgence_rsm.dir/rsm/rsm.cpp.o"
  "CMakeFiles/indulgence_rsm.dir/rsm/rsm.cpp.o.d"
  "libindulgence_rsm.a"
  "libindulgence_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
