# Empty dependencies file for indulgence_rsm.
# This may be replaced when dependencies are built.
