# Empty compiler generated dependencies file for indulgence_sim.
# This may be replaced when dependencies are built.
