
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/adversary.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/adversary.cpp.o.d"
  "/root/repo/src/sim/harness.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/harness.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/harness.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/validator.cpp" "src/CMakeFiles/indulgence_sim.dir/sim/validator.cpp.o" "gcc" "src/CMakeFiles/indulgence_sim.dir/sim/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/indulgence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
