file(REMOVE_RECURSE
  "CMakeFiles/indulgence_sim.dir/sim/adversary.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/adversary.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/harness.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/harness.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/message.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/message.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/schedule.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/schedule.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/indulgence_sim.dir/sim/validator.cpp.o"
  "CMakeFiles/indulgence_sim.dir/sim/validator.cpp.o.d"
  "libindulgence_sim.a"
  "libindulgence_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
