file(REMOVE_RECURSE
  "libindulgence_sim.a"
)
