# Empty dependencies file for indulgence_common.
# This may be replaced when dependencies are built.
