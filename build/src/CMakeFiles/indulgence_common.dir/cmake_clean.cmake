file(REMOVE_RECURSE
  "CMakeFiles/indulgence_common.dir/common/process_set.cpp.o"
  "CMakeFiles/indulgence_common.dir/common/process_set.cpp.o.d"
  "CMakeFiles/indulgence_common.dir/common/rng.cpp.o"
  "CMakeFiles/indulgence_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/indulgence_common.dir/common/table.cpp.o"
  "CMakeFiles/indulgence_common.dir/common/table.cpp.o.d"
  "libindulgence_common.a"
  "libindulgence_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
