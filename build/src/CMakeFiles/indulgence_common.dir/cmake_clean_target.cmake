file(REMOVE_RECURSE
  "libindulgence_common.a"
)
