file(REMOVE_RECURSE
  "libindulgence_consensus.a"
)
