# Empty compiler generated dependencies file for indulgence_consensus.
# This may be replaced when dependencies are built.
