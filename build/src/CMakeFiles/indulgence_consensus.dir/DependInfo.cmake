
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/amr_leader.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/amr_leader.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/amr_leader.cpp.o.d"
  "/root/repo/src/consensus/chandra_toueg.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/chandra_toueg.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/chandra_toueg.cpp.o.d"
  "/root/repo/src/consensus/consensus.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/consensus.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/consensus.cpp.o.d"
  "/root/repo/src/consensus/floodset.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset.cpp.o.d"
  "/root/repo/src/consensus/floodset_early.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset_early.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset_early.cpp.o.d"
  "/root/repo/src/consensus/floodset_ws.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset_ws.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/floodset_ws.cpp.o.d"
  "/root/repo/src/consensus/hurfin_raynal.cpp" "src/CMakeFiles/indulgence_consensus.dir/consensus/hurfin_raynal.cpp.o" "gcc" "src/CMakeFiles/indulgence_consensus.dir/consensus/hurfin_raynal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/indulgence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
