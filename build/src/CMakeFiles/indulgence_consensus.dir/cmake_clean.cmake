file(REMOVE_RECURSE
  "CMakeFiles/indulgence_consensus.dir/consensus/amr_leader.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/amr_leader.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/chandra_toueg.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/chandra_toueg.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/consensus.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/consensus.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset_early.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset_early.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset_ws.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/floodset_ws.cpp.o.d"
  "CMakeFiles/indulgence_consensus.dir/consensus/hurfin_raynal.cpp.o"
  "CMakeFiles/indulgence_consensus.dir/consensus/hurfin_raynal.cpp.o.d"
  "libindulgence_consensus.a"
  "libindulgence_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
