# Empty compiler generated dependencies file for indulgence_lb.
# This may be replaced when dependencies are built.
