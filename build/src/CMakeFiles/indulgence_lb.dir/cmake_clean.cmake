file(REMOVE_RECURSE
  "CMakeFiles/indulgence_lb.dir/lb/attack.cpp.o"
  "CMakeFiles/indulgence_lb.dir/lb/attack.cpp.o.d"
  "CMakeFiles/indulgence_lb.dir/lb/explorer.cpp.o"
  "CMakeFiles/indulgence_lb.dir/lb/explorer.cpp.o.d"
  "CMakeFiles/indulgence_lb.dir/lb/valency.cpp.o"
  "CMakeFiles/indulgence_lb.dir/lb/valency.cpp.o.d"
  "libindulgence_lb.a"
  "libindulgence_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indulgence_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
