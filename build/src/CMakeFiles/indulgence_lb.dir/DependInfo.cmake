
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/attack.cpp" "src/CMakeFiles/indulgence_lb.dir/lb/attack.cpp.o" "gcc" "src/CMakeFiles/indulgence_lb.dir/lb/attack.cpp.o.d"
  "/root/repo/src/lb/explorer.cpp" "src/CMakeFiles/indulgence_lb.dir/lb/explorer.cpp.o" "gcc" "src/CMakeFiles/indulgence_lb.dir/lb/explorer.cpp.o.d"
  "/root/repo/src/lb/valency.cpp" "src/CMakeFiles/indulgence_lb.dir/lb/valency.cpp.o" "gcc" "src/CMakeFiles/indulgence_lb.dir/lb/valency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/indulgence_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/indulgence_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
