file(REMOVE_RECURSE
  "libindulgence_lb.a"
)
