# Empty dependencies file for test_attack_variants.
# This may be replaced when dependencies are built.
