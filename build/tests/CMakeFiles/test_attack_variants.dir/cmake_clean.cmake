file(REMOVE_RECURSE
  "CMakeFiles/test_attack_variants.dir/test_attack_variants.cpp.o"
  "CMakeFiles/test_attack_variants.dir/test_attack_variants.cpp.o.d"
  "test_attack_variants"
  "test_attack_variants.pdb"
  "test_attack_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
