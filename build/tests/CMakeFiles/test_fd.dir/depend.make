# Empty dependencies file for test_fd.
# This may be replaced when dependencies are built.
