file(REMOVE_RECURSE
  "CMakeFiles/test_at2_ds.dir/test_at2_ds.cpp.o"
  "CMakeFiles/test_at2_ds.dir/test_at2_ds.cpp.o.d"
  "test_at2_ds"
  "test_at2_ds.pdb"
  "test_at2_ds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_at2_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
