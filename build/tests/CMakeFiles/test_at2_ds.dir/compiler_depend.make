# Empty compiler generated dependencies file for test_at2_ds.
# This may be replaced when dependencies are built.
