# Empty compiler generated dependencies file for test_af2.
# This may be replaced when dependencies are built.
