file(REMOVE_RECURSE
  "CMakeFiles/test_af2.dir/test_af2.cpp.o"
  "CMakeFiles/test_af2.dir/test_af2.cpp.o.d"
  "test_af2"
  "test_af2.pdb"
  "test_af2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_af2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
