# Empty dependencies file for test_fig1_indistinguishability.
# This may be replaced when dependencies are built.
