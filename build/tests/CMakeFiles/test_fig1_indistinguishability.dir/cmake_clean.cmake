file(REMOVE_RECURSE
  "CMakeFiles/test_fig1_indistinguishability.dir/test_fig1_indistinguishability.cpp.o"
  "CMakeFiles/test_fig1_indistinguishability.dir/test_fig1_indistinguishability.cpp.o.d"
  "test_fig1_indistinguishability"
  "test_fig1_indistinguishability.pdb"
  "test_fig1_indistinguishability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig1_indistinguishability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
