# Empty dependencies file for test_valency.
# This may be replaced when dependencies are built.
