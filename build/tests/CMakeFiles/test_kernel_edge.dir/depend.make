# Empty dependencies file for test_kernel_edge.
# This may be replaced when dependencies are built.
