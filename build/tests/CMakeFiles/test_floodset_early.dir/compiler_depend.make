# Empty compiler generated dependencies file for test_floodset_early.
# This may be replaced when dependencies are built.
