file(REMOVE_RECURSE
  "CMakeFiles/test_floodset_early.dir/test_floodset_early.cpp.o"
  "CMakeFiles/test_floodset_early.dir/test_floodset_early.cpp.o.d"
  "test_floodset_early"
  "test_floodset_early.pdb"
  "test_floodset_early[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floodset_early.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
