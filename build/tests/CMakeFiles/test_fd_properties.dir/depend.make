# Empty dependencies file for test_fd_properties.
# This may be replaced when dependencies are built.
