file(REMOVE_RECURSE
  "CMakeFiles/test_coordinator_edge.dir/test_coordinator_edge.cpp.o"
  "CMakeFiles/test_coordinator_edge.dir/test_coordinator_edge.cpp.o.d"
  "test_coordinator_edge"
  "test_coordinator_edge.pdb"
  "test_coordinator_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coordinator_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
