# Empty dependencies file for test_at2.
# This may be replaced when dependencies are built.
