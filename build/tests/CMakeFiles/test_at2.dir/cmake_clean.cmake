file(REMOVE_RECURSE
  "CMakeFiles/test_at2.dir/test_at2.cpp.o"
  "CMakeFiles/test_at2.dir/test_at2.cpp.o.d"
  "test_at2"
  "test_at2.pdb"
  "test_at2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_at2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
