file(REMOVE_RECURSE
  "CMakeFiles/test_rsm_windows.dir/test_rsm_windows.cpp.o"
  "CMakeFiles/test_rsm_windows.dir/test_rsm_windows.cpp.o.d"
  "test_rsm_windows"
  "test_rsm_windows.pdb"
  "test_rsm_windows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsm_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
