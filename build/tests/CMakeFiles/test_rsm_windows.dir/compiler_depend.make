# Empty compiler generated dependencies file for test_rsm_windows.
# This may be replaced when dependencies are built.
