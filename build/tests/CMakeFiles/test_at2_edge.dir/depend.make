# Empty dependencies file for test_at2_edge.
# This may be replaced when dependencies are built.
