file(REMOVE_RECURSE
  "CMakeFiles/test_at2_edge.dir/test_at2_edge.cpp.o"
  "CMakeFiles/test_at2_edge.dir/test_at2_edge.cpp.o.d"
  "test_at2_edge"
  "test_at2_edge.pdb"
  "test_at2_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_at2_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
