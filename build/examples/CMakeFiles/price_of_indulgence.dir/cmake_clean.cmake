file(REMOVE_RECURSE
  "CMakeFiles/price_of_indulgence.dir/price_of_indulgence.cpp.o"
  "CMakeFiles/price_of_indulgence.dir/price_of_indulgence.cpp.o.d"
  "price_of_indulgence"
  "price_of_indulgence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_of_indulgence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
