# Empty dependencies file for price_of_indulgence.
# This may be replaced when dependencies are built.
