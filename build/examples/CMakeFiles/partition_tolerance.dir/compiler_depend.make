# Empty compiler generated dependencies file for partition_tolerance.
# This may be replaced when dependencies are built.
