file(REMOVE_RECURSE
  "CMakeFiles/partition_tolerance.dir/partition_tolerance.cpp.o"
  "CMakeFiles/partition_tolerance.dir/partition_tolerance.cpp.o.d"
  "partition_tolerance"
  "partition_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
