file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_attack.dir/lower_bound_attack.cpp.o"
  "CMakeFiles/lower_bound_attack.dir/lower_bound_attack.cpp.o.d"
  "lower_bound_attack"
  "lower_bound_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
