# Empty compiler generated dependencies file for lower_bound_attack.
# This may be replaced when dependencies are built.
